package master

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// This file implements the master's side of the cluster event journal
// and the telemetry history: the third observability plane next to
// metrics (what is happening now) and traces (what happened inside one
// request). The journal records what has happened to the cluster over
// time — worker lifecycle, block state transitions, replication
// actions, placement decisions — and the history ring keeps sampled
// per-worker and per-tier capacity/usage/throughput so "octopus-cli
// top" can show trends, not just the latest heartbeat.

// Event types journaled by the master. Workers share the block_*
// namespace for their local transitions.
const (
	evWorkerRegister       = "worker_register"
	evWorkerExpired        = "worker_expired"
	evWorkerDecommissioned = "worker_decommissioned"
	evWorkerUnreachable    = "worker_unreachable"
	evBlockAllocated       = "block_allocated"
	evBlockCommitted       = "block_committed"
	evBlockAbandoned       = "block_abandoned"
	evBlockCorrupt         = "block_corrupt"
	evBlockRereplicated    = "block_rereplicated"
	evBlockExcessRemoved   = "block_excess_removed"
	evLeaseExpired         = "lease_expired"
	evPlacement            = "placement"
	evSlowOp               = "slow_op"
	evHeatMisplaced        = "heat_misplaced"
	evBlockMoved           = "block_moved"
	evBlockMoveExpired     = "block_move_expired"
	evMasterStarted        = "master_started"
	evImageLoaded          = "image_loaded"
)

const (
	// defaultHistoryInterval paces telemetry sampling when the
	// configuration leaves it zero.
	defaultHistoryInterval = 2 * time.Second

	// historyCapacity bounds the telemetry ring. At the default
	// interval this is ~17 minutes of history in a few hundred KB.
	historyCapacity = 512

	// placementCapacity bounds the retained placement explanations
	// (FIFO per block). Old blocks lose explainability before the
	// master loses memory.
	placementCapacity = 2048
)

// Journal exposes the master's event journal (for the HTTP handler and
// tests).
func (m *Master) Journal() *events.Journal { return m.journal }

// sampleHistory appends one telemetry sample to the history ring. The
// monitor loop calls it every HistoryInterval.
func (m *Master) sampleHistory() {
	s := m.liveSample()
	m.histMu.Lock()
	if m.histN == len(m.history) {
		m.history[m.histStart] = s
		m.histStart = (m.histStart + 1) % len(m.history)
	} else {
		m.history[(m.histStart+m.histN)%len(m.history)] = s
		m.histN++
	}
	m.histMu.Unlock()
}

// liveSample builds a ClusterSample from the current worker statistics.
func (m *Master) liveSample() rpc.ClusterSample {
	_, files, blocks := m.ns.Stats()
	s := rpc.ClusterSample{
		TimeNs: time.Now().UnixNano(),
		Tiers:  m.tierReports(),
		Files:  files,
		Blocks: blocks,
		Heat:   m.liveHeatAggregate(),
	}
	m.mu.RLock()
	for id, w := range m.workers {
		ws := rpc.WorkerSample{
			ID:       id,
			NetConns: w.netConns,
			NetMBps:  w.netMBps,
		}
		for _, ms := range w.media {
			ws.Capacity += ms.Capacity
			ws.Used += ms.Capacity - ms.Remaining
			ws.WriteMBps += ms.WriteMBps
			ws.ReadMBps += ms.ReadMBps
		}
		s.Workers = append(s.Workers, ws)
	}
	m.mu.RUnlock()
	sortWorkerSamples(s.Workers)
	return s
}

func sortWorkerSamples(ws []rpc.WorkerSample) {
	for i := 1; i < len(ws); i++ {
		for k := i; k > 0 && ws[k].ID < ws[k-1].ID; k-- {
			ws[k], ws[k-1] = ws[k-1], ws[k]
		}
	}
}

// clusterHistory returns the retained samples oldest first, always
// ending with a fresh live sample, optionally trimmed to the trailing
// `last` entries.
func (m *Master) clusterHistory(last int) []rpc.ClusterSample {
	m.histMu.Lock()
	out := make([]rpc.ClusterSample, 0, m.histN+1)
	for i := 0; i < m.histN; i++ {
		out = append(out, m.history[(m.histStart+i)%len(m.history)])
	}
	m.histMu.Unlock()
	out = append(out, m.liveSample())
	if last > 0 && len(out) > last {
		out = out[len(out)-last:]
	}
	return out
}

// recordPlacement converts a placement decision set to its wire form,
// retains it for Master.Explain (FIFO-bounded), and journals the
// chosen-vs-runner-up breakdown as a placement event.
func (m *Master) recordPlacement(path string, blk core.Block, traceID string, decisions []policy.ReplicaDecision) {
	if len(decisions) == 0 {
		return
	}
	be := rpc.BlockExplanation{
		Block:    blk.ID,
		TimeNs:   time.Now().UnixNano(),
		TraceID:  traceID,
		Replicas: wireDecisions(decisions),
	}
	m.placeMu.Lock()
	if _, exists := m.placements[blk.ID]; !exists {
		m.placeOrder = append(m.placeOrder, blk.ID)
		for len(m.placeOrder) > placementCapacity {
			delete(m.placements, m.placeOrder[0])
			m.placeOrder = m.placeOrder[1:]
		}
	}
	m.placements[blk.ID] = be
	m.placeMu.Unlock()

	attrs := []string{
		"path", path,
		"block", formatBlockID(blk.ID),
		"replicas", strconv.Itoa(len(decisions)),
	}
	for i, dec := range decisions {
		if len(dec.Candidates) == 0 {
			continue
		}
		win := dec.Candidates[0]
		prefix := "replica" + strconv.Itoa(i)
		attrs = append(attrs,
			prefix+".chosen", fmt.Sprintf("%s(%s) score=%.4f", win.Media.ID, win.Media.Tier, win.Score))
		if len(dec.Candidates) > 1 {
			up := dec.Candidates[1]
			attrs = append(attrs,
				prefix+".runner_up", fmt.Sprintf("%s(%s) score=%.4f", up.Media.ID, up.Media.Tier, up.Score))
		}
	}
	m.journal.PublishTraced(events.Info, evPlacement, traceID,
		"placement decision for "+path, attrs...)
}

// placementFor returns the retained explanation for one block.
func (m *Master) placementFor(id core.BlockID) (rpc.BlockExplanation, bool) {
	m.placeMu.Lock()
	defer m.placeMu.Unlock()
	be, ok := m.placements[id]
	return be, ok
}

// wireDecisions converts policy decisions to their RPC form.
func wireDecisions(decisions []policy.ReplicaDecision) []rpc.ReplicaExplanation {
	out := make([]rpc.ReplicaExplanation, len(decisions))
	for i, dec := range decisions {
		re := rpc.ReplicaExplanation{
			Entry:      dec.Entry,
			Ideal:      dec.Ideal,
			Considered: dec.Considered,
			Candidates: make([]rpc.CandidateScore, len(dec.Candidates)),
		}
		for k, c := range dec.Candidates {
			re.Candidates[k] = rpc.CandidateScore{
				Worker:     c.Media.Worker,
				Storage:    c.Media.ID,
				Node:       c.Media.Node,
				Rack:       c.Media.Rack,
				Tier:       c.Media.Tier,
				Score:      c.Score,
				Objectives: c.Objectives,
				Chosen:     c.Chosen,
			}
		}
		out[i] = re
	}
	return out
}

func formatBlockID(id core.BlockID) string {
	return strconv.FormatUint(uint64(id), 10)
}

// decommission removes a worker from service deliberately: its
// replicas become under-replicated and the monitor re-replicates them,
// exactly as on heartbeat expiry, but the removal is journaled as
// operator-initiated and the worker may not re-register.
func (m *Master) decommission(id core.WorkerID, reqID string) error {
	m.mu.Lock()
	w, ok := m.workers[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("master: unknown worker %s: %w", id, core.ErrNotFound)
	}
	delete(m.workers, id)
	delete(m.pending, id)
	// Keep the node's rack mapping while other live workers still run
	// on it — co-hosted workers share one fault domain.
	if !m.nodeInUseLocked(w.node) {
		m.topo.Remove(w.node)
	}
	m.decommissioned[id] = struct{}{}
	m.mu.Unlock()
	m.blocks.RemoveWorker(id)
	m.cfg.Logger.Warn("worker decommissioned", "worker", id)
	m.journal.PublishTraced(events.Warn, evWorkerDecommissioned, reqID,
		"worker decommissioned by operator", "worker", string(id), "node", w.node)
	return nil
}

// GetEvents serves one page of the cluster event journal over RPC.
// Untraced: pollers would churn the trace store.
func (s *Service) GetEvents(args *rpc.GetEventsArgs, reply *rpc.GetEventsReply) (err error) {
	defer s.m.trackOpUntraced("getEvents", args.ReqID)(&err)
	reply.Page = s.m.journal.Since(args.Since, args.Type, args.Limit)
	if reply.Page.Events == nil {
		reply.Page.Events = []events.Event{}
	}
	reply.Counts = s.m.journal.Counts()
	return nil
}

// GetClusterHistory serves the telemetry history, oldest first, ending
// with a fresh live sample.
func (s *Service) GetClusterHistory(args *rpc.GetClusterHistoryArgs, reply *rpc.GetClusterHistoryReply) (err error) {
	defer s.m.trackOpUntraced("getClusterHistory", args.ReqID)(&err)
	reply.Samples = s.m.clusterHistory(args.Last)
	return nil
}

// Explain returns the retained placement decisions for a file's
// blocks: for every replica, the winning (worker, tier) with its
// four-objective score vector and the runner-up candidates.
func (s *Service) Explain(args *rpc.ExplainArgs, reply *rpc.ExplainReply) (err error) {
	defer s.m.trackOp("explain", args.ReqHeader)(&err)
	blocks, _, _, err := s.m.ns.FileBlocks(args.Path)
	if err != nil {
		return wire(err)
	}
	reply.Path = args.Path
	reply.Objectives = policy.ObjectiveNames()
	for _, b := range blocks {
		if be, ok := s.m.placementFor(b.ID); ok {
			reply.Blocks = append(reply.Blocks, be)
		}
	}
	return nil
}

// Decommission removes a worker from service.
func (s *Service) Decommission(args *rpc.DecommissionArgs, _ *rpc.DecommissionReply) (err error) {
	defer s.m.trackOp("decommission", args.ReqHeader)(&err)
	return wire(s.m.decommission(args.ID, args.ReqID))
}
