package master

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// moopScoreBuckets spans the Eq. 11 scalarised scores, which are norm
// distances from the ideal vector and land in [0, ~2] in practice.
var moopScoreBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4}

// contentionBuckets resolve the short waits that matter for lock and
// queue contention: an uncontended mutex acquires in well under a
// microsecond, so the low end must distinguish "free" from "queued"
// while the top still captures pathological multi-second stalls.
var contentionBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 1,
}

// editBatchBuckets size edit-log append batches (always 1 today; the
// range leaves room for group commit).
var editBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// masterMetrics bundles the master's instruments under one registry,
// exposed at /metrics as octopus_master_* families.
type masterMetrics struct {
	reg *metrics.Registry

	ops    *metrics.CounterVec   // octopus_master_ops_total{op}
	opErrs *metrics.CounterVec   // octopus_master_op_errors_total{op}
	opDur  *metrics.HistogramVec // octopus_master_op_duration_seconds{op}

	placements *metrics.CounterVec   // octopus_master_placements_total{tier}
	retrievals *metrics.CounterVec   // octopus_master_retrievals_total{tier}
	moopScore  *metrics.HistogramVec // octopus_master_policy_moop_score{tier}

	// Contention plane: where metadata operations spend their time
	// when the master is loaded.
	nsLockWait   *metrics.HistogramVec // octopus_master_ns_lock_wait_seconds{mode}
	editAppend   *metrics.Histogram    // octopus_master_editlog_append_seconds
	editFsync    *metrics.Histogram    // octopus_master_editlog_fsync_seconds
	editBatch    *metrics.Histogram    // octopus_master_editlog_batch_records
	rpcQueueWait *metrics.Histogram    // octopus_master_rpc_queue_wait_seconds
	rpcInflight  *metrics.Gauge        // octopus_master_rpc_inflight

	slow *metrics.SlowLogger
}

// newMasterMetrics builds the registry and wires the gauges that read
// live master state on scrape.
func newMasterMetrics(m *Master) *masterMetrics {
	reg := metrics.NewRegistry()
	mm := &masterMetrics{
		reg:    reg,
		ops:    reg.CounterVec("octopus_master_ops_total", "RPC operations served, by operation.", "op"),
		opErrs: reg.CounterVec("octopus_master_op_errors_total", "RPC operations that returned an error, by operation.", "op"),
		opDur: reg.HistogramVec("octopus_master_op_duration_seconds",
			"RPC operation latency in seconds, by operation.", metrics.DefLatencyBuckets, "op"),
		placements: reg.CounterVec("octopus_master_placements_total",
			"Block replicas placed by the placement policy, by storage tier.", "tier"),
		retrievals: reg.CounterVec("octopus_master_retrievals_total",
			"First-choice read locations handed to clients, by storage tier.", "tier"),
		moopScore: reg.HistogramVec("octopus_master_policy_moop_score",
			"Scalarised MOOP objective score of each placement decision, by chosen tier.",
			moopScoreBuckets, "tier"),
		nsLockWait: reg.HistogramVec("octopus_master_ns_lock_wait_seconds",
			"Namespace mutex acquisition wait in seconds, by lock mode (read/write).",
			contentionBuckets, "mode"),
		editAppend: reg.Histogram("octopus_master_editlog_append_seconds",
			"Edit-log gob append latency in seconds.", contentionBuckets, nil),
		editFsync: reg.Histogram("octopus_master_editlog_fsync_seconds",
			"Edit-log fsync latency in seconds (sync mode only).", contentionBuckets, nil),
		editBatch: reg.Histogram("octopus_master_editlog_batch_records",
			"Records per edit-log append batch.", editBatchBuckets, nil),
		rpcQueueWait: reg.Histogram("octopus_master_rpc_queue_wait_seconds",
			"Wait between RPC request decode and handler start, in seconds.",
			contentionBuckets, nil),
		rpcInflight: reg.Gauge("octopus_master_rpc_inflight",
			"RPC requests decoded but not yet responded to.", nil),
		slow: metrics.NewSlowLogger(m.cfg.Logger, m.cfg.SlowOpThreshold,
			reg.Counter("octopus_master_slow_ops_total", "Operations slower than the slow-op threshold.", nil)),
	}
	reg.GaugeFunc("octopus_master_workers", "Live registered workers.", nil,
		func() float64 { return float64(m.NumWorkers()) })
	reg.GaugeFunc("octopus_master_namespace_directories", "Directories in the namespace.", nil,
		func() float64 { d, _, _ := m.ns.Stats(); return float64(d) })
	reg.GaugeFunc("octopus_master_namespace_files", "Files in the namespace.", nil,
		func() float64 { _, f, _ := m.ns.Stats(); return float64(f) })
	reg.GaugeFunc("octopus_master_namespace_blocks", "Blocks tracked by the block map.", nil,
		func() float64 { _, _, b := m.ns.Stats(); return float64(b) })
	for t := core.TierMemory; t < core.StorageTier(core.NumTiers); t++ {
		tier := t
		labels := metrics.Labels{"tier": tier.String()}
		reg.GaugeFunc("octopus_master_tier_capacity_bytes",
			"Aggregate capacity reported by workers, by storage tier.", labels,
			func() float64 { return float64(m.tierBytes(tier, false)) })
		reg.GaugeFunc("octopus_master_tier_remaining_bytes",
			"Aggregate remaining space reported by workers, by storage tier.", labels,
			func() float64 { return float64(m.tierBytes(tier, true)) })
	}
	reg.GaugeFunc("octopus_master_recovery_image_bytes",
		"Size of the fsimage loaded at the last namespace open.", nil,
		func() float64 { return float64(m.ns.Recovery().ImageBytes) })
	reg.GaugeFunc("octopus_master_recovery_image_load_seconds",
		"Time spent loading the fsimage at the last namespace open.", nil,
		func() float64 { return float64(m.ns.Recovery().ImageLoadNs) / 1e9 })
	reg.GaugeFunc("octopus_master_recovery_edits_replayed",
		"Edit records replayed at the last namespace open.", nil,
		func() float64 { return float64(m.ns.Recovery().EditsReplayed) })
	reg.GaugeFunc("octopus_master_recovery_replay_seconds",
		"Time spent replaying edits at the last namespace open.", nil,
		func() float64 { return float64(m.ns.Recovery().ReplayNs) / 1e9 })
	metrics.RegisterRuntimeGauges(reg, "octopus_master", m.started)
	if sr, ok := m.cfg.Placement.(policy.ScoreReporter); ok {
		sr.SetScoreFunc(func(tier core.StorageTier, score float64) {
			mm.moopScore.With(tier.String()).Observe(score)
		})
	}
	// The namespace reports every mutex wait and edit-log append here;
	// these observers are the sole feed for the contention histograms,
	// so per-op audit stats never double count.
	m.ns.SetLockObserver(func(wait time.Duration, read bool) {
		mode := "write"
		if read {
			mode = "read"
		}
		mm.nsLockWait.With(mode).Observe(wait.Seconds())
	})
	m.ns.SetEditObserver(func(appendD, fsyncD time.Duration, records int) {
		mm.editAppend.Observe(appendD.Seconds())
		if fsyncD > 0 {
			mm.editFsync.Observe(fsyncD.Seconds())
		}
		mm.editBatch.Observe(float64(records))
	})
	return mm
}

// tierBytes sums capacity or remaining space over one tier's media.
func (m *Master) tierBytes(tier core.StorageTier, remaining bool) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var sum int64
	for _, w := range m.workers {
		for _, ms := range w.media {
			if ms.Tier != tier {
				continue
			}
			if remaining {
				sum += ms.Remaining
			} else {
				sum += ms.Capacity
			}
		}
	}
	return sum
}

// Metrics returns the master's metric registry for exposition.
func (m *Master) Metrics() *metrics.Registry { return m.metrics.reg }

// trackOpSpan instruments one client RPC operation: count it, time
// it, log it if slow, stamp the request ID onto any wire error, and
// record a "master.<op>" span parented under the caller's span. The
// returned span lets the handler hang sub-spans (e.g. placement
// scoring) off the operation. Use as
//
//	sp, done := s.m.trackOpSpan("addBlock", args.ReqHeader)
//	defer done(&err)
//
// on a method with a named error return.
func (m *Master) trackOpSpan(op string, h rpc.ReqHeader) (*trace.ActiveSpan, func(*error)) {
	sp := m.tracer.Start(h.ReqID, h.SpanID, "master."+op)
	done := m.trackOpUntraced(op, h.ReqID)
	return sp, func(errp *error) {
		if *errp != nil {
			sp.SetError(*errp)
		}
		sp.End()
		done(errp)
	}
}

// trackOp is trackOpSpan for handlers that need no sub-spans.
func (m *Master) trackOp(op string, h rpc.ReqHeader) func(*error) {
	_, done := m.trackOpSpan(op, h)
	return done
}

// trackOpUntraced instruments an operation without recording a span.
// The worker-protocol handlers (register, heartbeats, block reports)
// use it: at heartbeat rates their per-call traces would churn the
// bounded trace store out of every client trace worth keeping, and
// the trace-service RPCs themselves must not recursively mint trace
// entries.
func (m *Master) trackOpUntraced(op, reqID string) func(*error) {
	start := time.Now()
	mm := m.metrics
	mm.ops.With(op).Inc()
	return func(errp *error) {
		d := time.Since(start)
		mm.opDur.With(op).Observe(d.Seconds())
		if *errp != nil {
			mm.opErrs.With(op).Inc()
			*errp = errors.New(rpc.WithReqID((*errp).Error(), reqID))
		}
		mm.slow.Observe(op, reqID, d)
	}
}
