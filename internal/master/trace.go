package master

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// AssembleTrace merges the master's retained spans for traceID
// (its own handler spans plus any client-reported ones) with spans
// fetched concurrently from every live worker's data port. Workers
// that fail to answer are skipped — a partial timeline beats none —
// but if nothing at all is found the trace is reported as unknown.
func (m *Master) AssembleTrace(traceID string) ([]trace.Span, error) {
	local := m.traces.Get(traceID)

	type workerAddr struct {
		id   core.WorkerID
		addr string
	}
	m.mu.RLock()
	addrs := make([]workerAddr, 0, len(m.workers))
	for id, w := range m.workers {
		addrs = append(addrs, workerAddr{id: id, addr: w.dataAddr})
	}
	m.mu.RUnlock()

	sets := make([][]trace.Span, len(addrs))
	var wg sync.WaitGroup
	for i, wa := range addrs {
		wg.Add(1)
		go func(i int, wa workerAddr) {
			defer wg.Done()
			spans, err := rpc.FetchSpans(wa.addr, traceID)
			if err != nil {
				m.cfg.Logger.Warn("trace fan-out failed",
					"worker", wa.id, "trace", traceID, "err", err)
				return
			}
			sets[i] = spans
		}(i, wa)
	}
	wg.Wait()

	merged := trace.Merge(append([][]trace.Span{local}, sets...)...)
	if len(merged) == 0 {
		return nil, fmt.Errorf("master: no spans retained for trace %s: %w", traceID, core.ErrNotFound)
	}
	return merged, nil
}

// Traces exposes the master's trace store (for the HTTP endpoint and
// tests).
func (m *Master) Traces() *trace.Store { return m.traces }
