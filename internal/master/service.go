package master

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/blockmgmt"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/namespace"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/topology"
)

// Service exposes the master protocols over net/rpc. Every method
// converts internal errors into their stable wire representation so
// clients keep matching with errors.Is.
type Service struct {
	m *Master
}

// wire converts an internal error for the RPC boundary.
func wire(err error) error {
	if err == nil {
		return nil
	}
	return errors.New(rpc.EncodeError(err))
}

// clientLocation resolves the caller's topology location from the node
// name it supplied ("" = off-cluster).
func (s *Service) clientLocation(node string) topology.Location {
	if node == "" {
		return topology.Location{}
	}
	return s.m.topo.LocationOf(node)
}

// Mkdir creates a directory.
func (s *Service) Mkdir(args *rpc.MkdirArgs, _ *rpc.MkdirReply) (err error) {
	op := s.m.beginOp("mkdir", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	return wire(s.m.ns.Mkdir(args.Path, args.Parents, args.Owner, op.Stats()))
}

// Create registers a new file for writing (paper Table 1).
func (s *Service) Create(args *rpc.CreateArgs, _ *rpc.CreateReply) (err error) {
	op := s.m.beginOp("create", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	if args.BlockSize <= 0 {
		args.BlockSize = s.m.cfg.BlockSize
	}
	removed, err := s.m.ns.Create(args.Path, args.RepVector, args.BlockSize, args.Overwrite, args.Owner, op.Stats())
	if err != nil {
		return wire(err)
	}
	s.m.invalidateBlocks(removed)
	s.m.touchFileWrite(args.Path)
	return nil
}

// AddBlock commits the previous block (if any) and allocates the next
// block with replica locations chosen by the placement policy.
func (s *Service) AddBlock(args *rpc.AddBlockArgs, reply *rpc.AddBlockReply) (err error) {
	op := s.m.beginOp("addBlock", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	opSpan := op.Span()
	if args.Previous != nil {
		if err := s.m.commitBlock(args.Path, *args.Previous, args.ReqID, op.Stats()); err != nil {
			return wire(err)
		}
	}
	blocks, rv, blockSize, err := s.m.ns.FileBlocks(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	var offset int64
	for _, b := range blocks {
		offset += b.NumBytes
	}

	snap := s.m.snapshot()
	// The MOOP placement decision gets its own sub-span: it is the
	// master-side cost the paper's §3.3 policies need attributed when
	// tuning against observed per-tier service times.
	placeSpan := s.m.tracer.Start(args.ReqID, opSpan.ID(), "master.placement")
	var targets []policy.Media
	var decisions []policy.ReplicaDecision
	var perr error
	explainer, canExplain := s.m.cfg.Placement.(policy.ExplainingPolicy)
	s.m.withRand(func(rng *rand.Rand) {
		req := policy.PlacementRequest{
			Snapshot:  snap,
			Client:    s.clientLocation(args.ClientNode),
			RepVector: rv,
			BlockSize: blockSize,
			Rand:      rng,
		}
		if canExplain {
			targets, decisions, perr = explainer.PlaceReplicasExplained(req)
		} else {
			targets, perr = s.m.cfg.Placement.PlaceReplicas(req)
		}
	})
	for _, t := range targets {
		placeSpan.Annotate("tier."+string(t.ID), t.Tier.String())
	}
	placeSpan.SetError(perr)
	placeSpan.End()
	if perr != nil && len(targets) == 0 {
		return wire(perr)
	}

	blk, err := s.m.ns.AddBlock(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	s.m.blocks.AddBlock(blk, rv)
	tiers := make([]string, len(targets))
	for i, t := range targets {
		tiers[i] = t.Tier.String()
	}
	s.m.journal.PublishTraced(events.Info, evBlockAllocated, args.ReqID,
		"block allocated",
		"path", args.Path,
		"block", formatBlockID(blk.ID),
		"replicas", strconv.Itoa(len(targets)),
		"tiers", strings.Join(tiers, ","))
	s.m.recordPlacement(args.Path, blk, args.ReqID, decisions)
	s.m.heat.indexBlock(blk.ID, args.Path)

	located := core.LocatedBlock{Block: blk, Offset: offset}
	for _, t := range targets {
		s.m.metrics.placements.With(t.Tier.String()).Inc()
	}
	s.m.mu.Lock()
	for _, t := range targets {
		s.m.scheduled[t.ID]++
		s.m.schedTargets[blk.ID] = append(s.m.schedTargets[blk.ID], t.ID)
		w := s.m.workers[t.Worker]
		if w == nil {
			continue
		}
		located.Locations = append(located.Locations, core.BlockLocation{
			Worker:  t.Worker,
			Address: w.dataAddr,
			Storage: t.ID,
			Tier:    t.Tier,
			Rack:    t.Rack,
		})
	}
	s.m.mu.Unlock()
	if len(located.Locations) == 0 {
		return wire(core.ErrNoWorkers)
	}
	reply.Located = located
	return nil
}

// drainScheduled releases any still-outstanding pipeline targets for
// a block whose write finished or died, so their in-flight load stops
// inflating that medium's Connections in placement snapshots.
func (m *Master) drainScheduled(id core.BlockID) {
	m.mu.Lock()
	for _, sid := range m.schedTargets[id] {
		if m.scheduled[sid] > 0 {
			m.scheduled[sid]--
		}
		if m.scheduled[sid] == 0 {
			delete(m.scheduled, sid)
		}
	}
	delete(m.schedTargets, id)
	m.mu.Unlock()
}

// commitBlock records a finished block in both metadata collections.
func (m *Master) commitBlock(path string, b core.Block, reqID string, st *namespace.OpStats) error {
	if err := m.ns.CommitBlock(path, b, st); err != nil {
		return err
	}
	m.blocks.CommitBlock(b)
	m.drainScheduled(b.ID)
	m.journal.PublishTraced(events.Info, evBlockCommitted, reqID,
		"block committed",
		"path", path,
		"block", formatBlockID(b.ID),
		"bytes", strconv.FormatInt(b.NumBytes, 10))
	return nil
}

// CommitBlock records the final length of a finished block without
// allocating a successor; the overlapped client write path commits
// each block as its pipeline ack arrives.
func (s *Service) CommitBlock(args *rpc.CommitBlockArgs, _ *rpc.CommitBlockReply) (err error) {
	op := s.m.beginOp("commitBlock", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	op.Bytes(args.Block.NumBytes)
	return wire(s.m.commitBlock(args.Path, args.Block, args.ReqID, op.Stats()))
}

// Complete seals a file after its final block.
func (s *Service) Complete(args *rpc.CompleteArgs, _ *rpc.CompleteReply) (err error) {
	op := s.m.beginOp("complete", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	if args.Last != nil {
		s.m.blocks.CommitBlock(*args.Last)
		s.m.drainScheduled(args.Last.ID)
		s.m.journal.PublishTraced(events.Info, evBlockCommitted, args.ReqID,
			"final block committed at file completion",
			"path", args.Path,
			"block", formatBlockID(args.Last.ID),
			"bytes", strconv.FormatInt(args.Last.NumBytes, 10))
	}
	return wire(s.m.ns.Complete(args.Path, args.Last, op.Stats()))
}

// Abandon drops an under-construction file after a failed write.
func (s *Service) Abandon(args *rpc.AbandonArgs, _ *rpc.AbandonReply) (err error) {
	op := s.m.beginOp("abandon", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	blocks, err := s.m.ns.Abandon(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	s.m.invalidateBlocks(blocks)
	return nil
}

// AbandonBlock drops a failed block from an under-construction file
// and invalidates any replicas that were stored before the pipeline
// broke.
func (s *Service) AbandonBlock(args *rpc.AbandonBlockArgs, _ *rpc.AbandonBlockReply) (err error) {
	op := s.m.beginOp("abandonBlock", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	if err := s.m.ns.AbandonBlock(args.Path, args.Block.ID, op.Stats()); err != nil {
		return wire(err)
	}
	s.m.invalidateBlocks([]core.Block{args.Block})
	return nil
}

// invalidateBlocks forgets blocks and schedules replica deletion on
// their workers.
func (m *Master) invalidateBlocks(blocks []core.Block) {
	m.heat.forgetBlocks(blocks)
	for _, b := range blocks {
		m.drainScheduled(b.ID)
		replicas := m.blocks.RemoveBlock(b.ID)
		for _, r := range replicas {
			m.enqueue(r.Worker, rpc.Command{Kind: rpc.CmdDelete, Block: b, Target: r.Storage})
		}
		m.journal.Publish(events.Info, evBlockAbandoned,
			"block invalidated; replica deletion scheduled",
			"block", formatBlockID(b.ID),
			"replicas", strconv.Itoa(len(replicas)))
	}
}

// GetBlockLocations returns the blocks overlapping a byte range with
// replica locations ordered by the retrieval policy (paper §4).
func (s *Service) GetBlockLocations(args *rpc.GetBlockLocationsArgs, reply *rpc.GetBlockLocationsReply) (err error) {
	op := s.m.beginOp("getBlockLocations", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	blocks, _, _, err := s.m.ns.FileBlocks(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	var fileLen int64
	for _, b := range blocks {
		fileLen += b.NumBytes
	}
	reply.FileLength = fileLen
	length := args.Length
	if length < 0 {
		length = fileLen
	}
	end := args.Offset + length
	// One getBlockLocations is one application-level open/read of the
	// file: record it as file-level read heat covering the requested
	// range (block-level heat arrives from the workers that actually
	// serve the bytes).
	touched := length
	if touched > fileLen-args.Offset {
		touched = fileLen - args.Offset
	}
	if touched < 0 {
		touched = 0
	}
	op.Bytes(touched)
	s.m.touchFileRead(args.Path, touched)

	snap := s.m.snapshot()
	client := s.clientLocation(args.ClientNode)
	var offset int64
	for _, b := range blocks {
		blockEnd := offset + b.NumBytes
		if blockEnd > args.Offset && offset < end {
			located := core.LocatedBlock{Block: b, Offset: offset}
			media := s.m.mediaFor(s.m.blocks.Replicas(b.ID))
			var ordered []policy.Media
			s.m.withRand(func(rng *rand.Rand) {
				ordered = s.m.cfg.Retrieval.Order(policy.RetrievalRequest{
					Snapshot: snap,
					Client:   client,
					Replicas: media,
					Rand:     rng,
				})
			})
			for _, om := range ordered {
				if loc, ok := s.m.locationFor(blockmgmt.Replica{
					Worker: om.Worker, Storage: om.ID, Tier: om.Tier,
				}); ok {
					located.Locations = append(located.Locations, loc)
				}
			}
			if len(located.Locations) > 0 {
				s.m.metrics.retrievals.With(located.Locations[0].Tier.String()).Inc()
			}
			reply.Blocks = append(reply.Blocks, located)
		}
		offset = blockEnd
	}
	return nil
}

// GetFileInfo returns one path's status.
func (s *Service) GetFileInfo(args *rpc.GetFileInfoArgs, reply *rpc.GetFileInfoReply) (err error) {
	op := s.m.beginOp("getFileInfo", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	info, err := s.m.ns.Status(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	reply.Status = toFileStatus(info)
	return nil
}

// List returns a directory's entries.
func (s *Service) List(args *rpc.ListArgs, reply *rpc.ListReply) (err error) {
	op := s.m.beginOp("list", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	infos, err := s.m.ns.List(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	reply.Entries = make([]rpc.FileStatus, len(infos))
	for i, info := range infos {
		reply.Entries[i] = toFileStatus(info)
	}
	return nil
}

func toFileStatus(info namespace.FileInfo) rpc.FileStatus {
	return rpc.FileStatus{
		Path:      info.Path,
		IsDir:     info.IsDir,
		Length:    info.Length,
		RepVector: info.RepVector,
		BlockSize: info.BlockSize,
		ModTime:   info.ModTime,
		Owner:     info.Owner,
	}
}

// Delete removes a path and invalidates its blocks.
func (s *Service) Delete(args *rpc.DeleteArgs, _ *rpc.DeleteReply) (err error) {
	op := s.m.beginOp("delete", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	blocks, err := s.m.ns.Delete(args.Path, args.Recursive, op.Stats())
	if err != nil {
		return wire(err)
	}
	s.m.invalidateBlocks(blocks)
	s.m.heat.forgetPath(args.Path)
	return nil
}

// Rename moves a path.
func (s *Service) Rename(args *rpc.RenameArgs, _ *rpc.RenameReply) (err error) {
	op := s.m.beginOp("rename", args.ReqHeader, args.Src, args.Dst)
	defer op.Finish(&err)
	if err := s.m.ns.Rename(args.Src, args.Dst, op.Stats()); err != nil {
		return wire(err)
	}
	s.m.heat.rename(args.Src, args.Dst)
	return nil
}

// SetReplication changes a file's replication vector; the replication
// monitor then moves, copies, or deletes replicas asynchronously
// (paper §2.3, §5).
func (s *Service) SetReplication(args *rpc.SetReplicationArgs, _ *rpc.SetReplicationReply) (err error) {
	op := s.m.beginOp("setReplication", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	if _, err := s.m.ns.SetRepVector(args.Path, args.RepVector, op.Stats()); err != nil {
		return wire(err)
	}
	blocks, _, _, err := s.m.ns.FileBlocks(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	for _, b := range blocks {
		s.m.blocks.SetExpected(b.ID, args.RepVector)
	}
	return nil
}

// GetStorageTierReports returns per-tier capacity and throughput
// aggregates (paper Table 1).
func (s *Service) GetStorageTierReports(args *rpc.TierReportsArgs, reply *rpc.TierReportsReply) (err error) {
	defer s.m.trackOp("getStorageTierReports", args.ReqHeader)(&err)
	reply.Reports = s.m.tierReports()
	return nil
}

// SetQuota sets a per-tier byte quota on a directory.
func (s *Service) SetQuota(args *rpc.SetQuotaArgs, _ *rpc.SetQuotaReply) (err error) {
	op := s.m.beginOp("setQuota", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	return wire(s.m.ns.SetQuota(args.Path, args.Tier, args.Bytes, op.Stats()))
}

// ReportBadBlockArgs / -Reply implement client corruption reports.
type ReportBadBlockArgs struct {
	rpc.ReqHeader
	Block   core.Block
	Storage core.StorageID
	Worker  core.WorkerID
}
type ReportBadBlockReply struct{}

// ReportBadBlock drops a corrupt replica from the block map and
// schedules its deletion; re-replication restores the count.
func (s *Service) ReportBadBlock(args *ReportBadBlockArgs, _ *ReportBadBlockReply) (err error) {
	defer s.m.trackOp("reportBadBlock", args.ReqHeader)(&err)
	s.m.blocks.RemoveReplica(args.Block.ID, args.Storage)
	s.m.enqueue(args.Worker, rpc.Command{Kind: rpc.CmdDelete, Block: args.Block, Target: args.Storage})
	s.m.journal.PublishTraced(events.Error, evBlockCorrupt, args.ReqID,
		"corrupt replica reported; deletion scheduled",
		"block", formatBlockID(args.Block.ID),
		"storage", string(args.Storage),
		"worker", string(args.Worker))
	return nil
}

// Register adds a worker to the cluster (paper §2.2).
func (s *Service) Register(args *rpc.RegisterArgs, reply *rpc.RegisterReply) (err error) {
	defer s.m.trackOpUntraced("register", args.ReqID)(&err)
	if args.ID == "" || args.Node == "" {
		return wire(fmt.Errorf("master: registration missing worker identity: %w", core.ErrNotFound))
	}
	rack := topology.NormalizeRack(args.Rack)
	w := &workerState{
		id:       args.ID,
		node:     args.Node,
		rack:     rack,
		dataAddr: args.DataAddr,
		httpAddr: args.HTTPAddr,
		netMBps:  args.NetMBps,
		media:    make(map[core.StorageID]rpc.MediaStat, len(args.Media)),
		lastSeen: time.Now(),
	}
	for _, ms := range args.Media {
		w.media[ms.ID] = ms
	}
	s.m.mu.Lock()
	if _, gone := s.m.decommissioned[args.ID]; gone {
		s.m.mu.Unlock()
		return wire(fmt.Errorf("master: worker %s is decommissioned: %w", args.ID, core.ErrPermission))
	}
	s.m.workers[args.ID] = w
	s.m.mu.Unlock()
	s.m.topo.Add(args.Node, rack)
	s.m.cfg.Logger.Info("worker registered",
		"worker", args.ID, "rack", rack, "media", len(args.Media))
	s.m.journal.PublishTraced(events.Info, evWorkerRegister, args.ReqID,
		"worker registered",
		"worker", string(args.ID), "node", args.Node, "rack", rack,
		"media", strconv.Itoa(len(args.Media)))
	reply.Registered = args.ID
	return nil
}

// Heartbeat refreshes a worker's statistics and delivers pending
// commands (paper §2.2).
func (s *Service) Heartbeat(args *rpc.HeartbeatArgs, reply *rpc.HeartbeatReply) (err error) {
	defer s.m.trackOpUntraced("heartbeat", args.ReqID)(&err)
	s.m.mu.Lock()
	w, ok := s.m.workers[args.ID]
	if !ok {
		s.m.mu.Unlock()
		return wire(fmt.Errorf("master: unknown worker %s, re-register: %w", args.ID, core.ErrNotFound))
	}
	w.lastSeen = time.Now()
	w.netConns = args.NetConns
	if args.NetMBps > 0 {
		w.netMBps = args.NetMBps
	}
	if args.HTTPAddr != "" {
		w.httpAddr = args.HTTPAddr
	}
	for _, ms := range args.Media {
		w.media[ms.ID] = ms
	}
	reply.Commands = s.m.pending[args.ID]
	delete(s.m.pending, args.ID)
	s.m.mu.Unlock()
	// Fold the piggybacked heat deltas outside the worker lock: the
	// heat maps have their own synchronisation.
	s.m.foldHeat(args.Heat)
	return nil
}

// BlockReport reconciles the master's replica map with a worker's full
// listing (paper §5: under-/over-replication is detected during block
// reports).
func (s *Service) BlockReport(args *rpc.BlockReportArgs, _ *rpc.BlockReportReply) (err error) {
	defer s.m.trackOpUntraced("blockReport", args.ReqID)(&err)
	s.m.mu.Lock()
	w, ok := s.m.workers[args.ID]
	var tiers map[core.StorageID]core.StorageTier
	if ok {
		w.lastSeen = time.Now() // a block report proves liveness
		tiers = make(map[core.StorageID]core.StorageTier, len(w.media))
		for sid, ms := range w.media {
			tiers[sid] = ms.Tier
		}
	}
	s.m.mu.Unlock()
	if !ok {
		return wire(fmt.Errorf("master: unknown worker %s: %w", args.ID, core.ErrNotFound))
	}

	reported := make(map[core.StorageID]map[core.BlockID]struct{})
	for _, sb := range args.Blocks {
		tier, known := tiers[sb.Storage]
		if !known {
			continue
		}
		accepted, _ := s.m.blocks.AddReplica(sb.Block, blockmgmt.Replica{
			Worker: args.ID, Storage: sb.Storage, Tier: tier,
		})
		if !accepted {
			// Unknown or stale block: have the worker delete it.
			s.m.enqueue(args.ID, rpc.Command{Kind: rpc.CmdDelete, Block: sb.Block, Target: sb.Storage})
			continue
		}
		set, ok := reported[sb.Storage]
		if !ok {
			set = make(map[core.BlockID]struct{})
			reported[sb.Storage] = set
		}
		set[sb.Block.ID] = struct{}{}
	}
	// Reconcile: any replica the map attributes to this worker that
	// the report omitted has been lost (media failure, manual wipe).
	// Replicas added within the last report interval are exempt: the
	// report may have been generated before their write completed.
	grace := time.Now().Add(-s.m.cfg.ReportGrace)
	for blockID, storage := range s.m.blocks.ReplicasOnWorker(args.ID, grace) {
		if set, ok := reported[storage]; ok {
			if _, present := set[blockID]; present {
				continue
			}
		}
		s.m.blocks.RemoveReplica(blockID, storage)
	}
	return nil
}

// BlockReceived records a freshly stored replica (sent by workers
// right after a pipeline write or replication completes).
func (s *Service) BlockReceived(args *rpc.BlockReceivedArgs, _ *rpc.BlockReceivedReply) (err error) {
	defer s.m.trackOpUntraced("blockReceived", args.ReqID)(&err)
	s.m.mu.Lock()
	w, ok := s.m.workers[args.ID]
	var tier core.StorageTier
	if ok {
		w.lastSeen = time.Now() // a stored block proves liveness
		if ms, found := w.media[args.Storage]; found {
			tier = ms.Tier
		} else {
			ok = false
		}
	}
	s.m.mu.Unlock()
	if !ok {
		return wire(fmt.Errorf("master: unknown worker/media %s/%s: %w", args.ID, args.Storage, core.ErrNotFound))
	}
	s.m.blocks.AddReplica(args.Block, blockmgmt.Replica{
		Worker: args.ID, Storage: args.Storage, Tier: tier,
	})
	// Release exactly the scheduled count this (block, storage) pair
	// took out in AddBlock. Confirmations for replication/mover copies
	// (never counted) and duplicates leave the counts alone.
	s.m.mu.Lock()
	if outstanding, ok := s.m.schedTargets[args.Block.ID]; ok {
		for i, sid := range outstanding {
			if sid != args.Storage {
				continue
			}
			if s.m.scheduled[sid] > 0 {
				s.m.scheduled[sid]--
			}
			if s.m.scheduled[sid] == 0 {
				delete(s.m.scheduled, sid)
			}
			outstanding = append(outstanding[:i], outstanding[i+1:]...)
			if len(outstanding) == 0 {
				delete(s.m.schedTargets, args.Block.ID)
			} else {
				s.m.schedTargets[args.Block.ID] = outstanding
			}
			break
		}
	}
	s.m.mu.Unlock()
	return nil
}

// BlockDeleted records a replica removal acknowledged by a worker.
func (s *Service) BlockDeleted(args *rpc.BlockDeletedArgs, _ *rpc.BlockDeletedReply) (err error) {
	defer s.m.trackOpUntraced("blockDeleted", args.ReqID)(&err)
	s.m.blocks.RemoveReplica(args.Block.ID, args.Storage)
	return nil
}

// ImageArgs / ImageReply implement Backup Master synchronisation: the
// backup periodically fetches a serialized namespace checkpoint
// (paper §2.1).
type ImageArgs struct{ rpc.ReqHeader }
type ImageReply struct {
	Image []byte
}

// GetImage serialises the namespace for a Backup Master.
func (s *Service) GetImage(args *ImageArgs, reply *ImageReply) (err error) {
	defer s.m.trackOpUntraced("getImage", args.ReqID)(&err)
	data, err := s.m.ns.ImageBytes()
	if err != nil {
		return wire(err)
	}
	reply.Image = data
	return nil
}

// GetContentSummary aggregates usage over a subtree (`du`).
func (s *Service) GetContentSummary(args *rpc.ContentSummaryArgs, reply *rpc.ContentSummaryReply) (err error) {
	op := s.m.beginOp("getContentSummary", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	sum, err := s.m.ns.ContentSummary(args.Path, op.Stats())
	if err != nil {
		return wire(err)
	}
	reply.Summary = rpc.ContentSummary{
		Path:        args.Path,
		Files:       sum.Files,
		Directories: sum.Directories,
		Bytes:       sum.Bytes,
	}
	copy(reply.Summary.TierBytes[:], sum.TierBytes[:])
	return nil
}

// Fsck reports per-file replication health over a subtree, computed
// from the block map's per-tier replication states (paper §5).
func (s *Service) Fsck(args *rpc.FsckArgs, reply *rpc.FsckReply) (err error) {
	op := s.m.beginOp("fsck", args.ReqHeader, args.Path, "")
	defer op.Finish(&err)
	walkErr := s.m.ns.WalkFiles(args.Path, func(path string, blocks []core.Block, rv core.ReplicationVector, uc bool) {
		f := rpc.FsckFile{
			Path:              path,
			Expected:          rv,
			Blocks:            len(blocks),
			UnderConstruction: uc,
		}
		for _, b := range blocks {
			st, ok := s.m.blocks.State(b.ID)
			if !ok {
				f.MissingBlocks++
				continue
			}
			if len(s.m.blocks.Replicas(b.ID)) == 0 {
				f.MissingBlocks++
			}
			if st.Satisfied() {
				f.HealthyBlocks++
				continue
			}
			f.MissingReplicas += st.MissingTotal()
			f.ExcessReplicas += st.Excess
		}
		reply.Files = append(reply.Files, f)
	})
	return wire(walkErr)
}

// GetWorkerReports lists every live worker with its per-media
// statistics (the dfsadmin -report equivalent).
func (s *Service) GetWorkerReports(args *rpc.WorkerReportsArgs, reply *rpc.WorkerReportsReply) (err error) {
	defer s.m.trackOp("getWorkerReports", args.ReqHeader)(&err)
	s.m.mu.RLock()
	defer s.m.mu.RUnlock()
	reply.MasterHTTP = s.m.httpAddr
	for _, w := range s.m.workers {
		wr := rpc.WorkerReport{
			ID: w.id, Node: w.node, Rack: w.rack,
			DataAddr: w.dataAddr, HTTPAddr: w.httpAddr, NetMBps: w.netMBps,
		}
		for _, ms := range w.media {
			wr.Media = append(wr.Media, ms)
		}
		sort.Slice(wr.Media, func(i, j int) bool { return wr.Media[i].ID < wr.Media[j].ID })
		reply.Workers = append(reply.Workers, wr)
	}
	sort.Slice(reply.Workers, func(i, j int) bool { return reply.Workers[i].ID < reply.Workers[j].ID })
	return nil
}

// ReportSpans accepts a client's locally recorded spans, making the
// master the rendezvous point for trace assembly after the client
// process exits. Untraced: recording spans about span reporting would
// pollute the store.
func (s *Service) ReportSpans(args *rpc.ReportSpansArgs, _ *rpc.ReportSpansReply) (err error) {
	defer s.m.trackOpUntraced("reportSpans", args.ReqID)(&err)
	for _, sp := range args.Spans {
		s.m.traces.Add(sp)
	}
	return nil
}

// GetTrace assembles the cross-daemon timeline of one trace: the
// master's own spans (including client-reported ones) merged with
// spans fanned out from every live worker's data port.
func (s *Service) GetTrace(args *rpc.GetTraceArgs, reply *rpc.GetTraceReply) (err error) {
	defer s.m.trackOpUntraced("getTrace", args.ReqID)(&err)
	spans, err := s.m.AssembleTrace(args.TraceID)
	if err != nil {
		return wire(err)
	}
	reply.Spans = spans
	return nil
}
