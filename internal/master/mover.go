package master

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/blockmgmt"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/policy"
	"repro/internal/rpc"
)

// This file implements the background tier mover: the monitor-loop
// pass that closes the loop the heat plane opened. Where scanMisplaced
// only *reports* blocks whose replica tier vectors contradict their
// access heat, the mover *acts*: it promotes a hot-on-cold block by
// replicating it onto a MEMORY/SSD medium chosen by the placement
// policy and then retiring the coldest source replica once the new
// copy is confirmed, and demotes cold-on-premium blocks the inverse
// way (the automated tier management of Herodotou & Kakoulli's
// follow-up work). A move is copy-then-delete, never delete-then-copy:
// the per-tier replica count is conserved and the replication monitor
// never sees the block as unhealthy mid-move.
//
// Moves are governed so the mover cannot starve foreground traffic or
// thrash on flapping heat: a pass interval, a cap on concurrent
// in-flight moves, a bytes/sec replication budget (deficit-counter
// style, so blocks larger than one second of budget still move, just
// less often), and a per-block cooldown armed after every completed or
// expired move.

const (
	defaultMoverInterval    = 2 * time.Second
	defaultMoverMaxMoves    = 4
	defaultMoverBytesPerSec = int64(64 << 20)
	defaultMoverCooldown    = 30 * time.Second

	// moverRecentCap bounds the ring of finished moves kept for the
	// status document.
	moverRecentCap = 64

	// moverConfirmTicks bounds how many mover intervals a scheduled
	// replicate may stay unconfirmed before the move is abandoned (the
	// target worker may have died or dropped the command).
	moverConfirmTicks = 20
)

// mover holds the tier mover's state. All mutation happens on the
// master's monitor goroutine; the mutex guards the status RPC readers
// and the replication monitor's in-flight check.
type mover struct {
	interval     time.Duration
	maxMoves     int
	bytesPerSec  int64
	cooldownSpan time.Duration

	mu       sync.Mutex
	inflight map[core.BlockID]*rpc.MoveRecord
	cooldown map[core.BlockID]time.Time
	recent   []rpc.MoveRecord // newest first, bounded by moverRecentCap
	counters rpc.MoverCounters
	// budget is the remaining bytes allowance; scheduling charges the
	// full block size (possibly driving it negative) and refills at
	// bytesPerSec, capped at one second of burst.
	budget     float64
	lastRefill time.Time
}

func newMover(cfg Config) *mover {
	mv := &mover{
		interval:     cfg.MoverInterval,
		maxMoves:     cfg.MoverMaxMoves,
		bytesPerSec:  cfg.MoverBytesPerSec,
		cooldownSpan: cfg.MoverCooldown,
		inflight:     make(map[core.BlockID]*rpc.MoveRecord),
		cooldown:     make(map[core.BlockID]time.Time),
	}
	if mv.interval == 0 {
		mv.interval = defaultMoverInterval
	}
	if mv.maxMoves <= 0 {
		mv.maxMoves = defaultMoverMaxMoves
	}
	if mv.bytesPerSec == 0 {
		mv.bytesPerSec = defaultMoverBytesPerSec
	}
	if mv.cooldownSpan == 0 {
		mv.cooldownSpan = defaultMoverCooldown
	}
	return mv
}

// enabled reports whether the mover runs at all (negative
// MoverInterval disables it).
func (mv *mover) enabled() bool { return mv.interval > 0 }

// limited reports whether the bytes/sec budget applies (negative
// MoverBytesPerSec removes it).
func (mv *mover) limited() bool { return mv.bytesPerSec > 0 }

func (mv *mover) refillLocked(now time.Time) {
	if !mv.limited() {
		return
	}
	if mv.lastRefill.IsZero() {
		mv.budget = float64(mv.bytesPerSec)
	} else {
		mv.budget += now.Sub(mv.lastRefill).Seconds() * float64(mv.bytesPerSec)
		if mv.budget > float64(mv.bytesPerSec) {
			mv.budget = float64(mv.bytesPerSec)
		}
	}
	mv.lastRefill = now
}

func (mv *mover) pushRecentLocked(rec rpc.MoveRecord) {
	mv.recent = append([]rpc.MoveRecord{rec}, mv.recent...)
	if len(mv.recent) > moverRecentCap {
		mv.recent = mv.recent[:moverRecentCap]
	}
}

// moverBusy reports whether the mover has an in-flight move for the
// block. The replication monitor skips such blocks: the transient
// extra replica mid-move must not be treated as excess, and the
// mover's own retire step finishes the transition.
func (m *Master) moverBusy(id core.BlockID) bool {
	mv := m.mover
	mv.mu.Lock()
	_, busy := mv.inflight[id]
	mv.mu.Unlock()
	return busy
}

// moverPass runs one mover iteration: finish or expire in-flight
// moves, then convert fresh tier-fitness findings into new moves
// within the governors. Called from the monitor goroutine at
// MoverInterval cadence.
func (m *Master) moverPass() {
	mv := m.mover
	if !mv.enabled() {
		return
	}
	mv.mu.Lock()
	defer mv.mu.Unlock()
	now := time.Now()
	mv.refillLocked(now)
	m.moverFinishLocked(now)
	m.moverScheduleLocked(now)
	for id, until := range mv.cooldown {
		if now.After(until) {
			delete(mv.cooldown, id)
		}
	}
}

// moverFinishLocked retires the source replica of every in-flight move
// whose new replica has been confirmed (via BlockReceived or a block
// report), and abandons moves that outlived the confirmation deadline.
func (m *Master) moverFinishLocked(now time.Time) {
	mv := m.mover
	deadline := time.Duration(moverConfirmTicks) * mv.interval
	for id, rec := range mv.inflight {
		confirmed := false
		for _, r := range m.blocks.Replicas(id) {
			if r.Storage == rec.ToStorage {
				confirmed = true
				break
			}
		}
		if confirmed {
			m.moverCompleteLocked(rec, now)
			delete(mv.inflight, id)
			continue
		}
		if now.Sub(time.Unix(0, rec.StartedNs)) > deadline {
			rec.Outcome = rpc.MoveExpired
			rec.FinishedNs = now.UnixNano()
			mv.counters.Expired++
			mv.cooldown[id] = now.Add(mv.cooldownSpan)
			mv.pushRecentLocked(*rec)
			delete(mv.inflight, id)
			m.journal.PublishTraced(events.Warn, evBlockMoveExpired, rec.TraceID,
				"tier move expired before the new replica was confirmed",
				"block", formatBlockID(id),
				"path", rec.Path,
				"kind", rec.Kind,
				"to", string(rec.ToStorage))
		}
	}
}

// moverCompleteLocked finishes one confirmed move: retire the source
// replica (shifting one pinned-tier entry of the block's expected
// vector when the source was pin-covered, so the per-tier counts stay
// conserved and the block never goes under-replicated against its own
// expectation), journal the block_moved event, and arm the cooldown.
func (m *Master) moverCompleteLocked(rec *rpc.MoveRecord, now time.Time) {
	mv := m.mover
	if info, ok := m.blocks.Info(rec.Block); ok {
		var actual [core.NumTiers]int
		victimLive := false
		for _, r := range info.Replicas {
			actual[r.Tier]++
			if r.Storage == rec.FromStorage {
				victimLive = true
			}
		}
		// The source may have vanished mid-move (worker death); then
		// there is nothing to retire and the replication monitor takes
		// over with the new replica as a healthy source.
		if victimLive {
			if pinned := info.Expected.Tier(rec.FromTier); actual[rec.FromTier] <= pinned {
				shifted := info.Expected.
					WithTier(rec.FromTier, pinned-1).
					WithTier(rec.ToTier, info.Expected.Tier(rec.ToTier)+1)
				m.blocks.SetExpected(rec.Block, shifted)
			}
			m.blocks.RemoveReplica(rec.Block, rec.FromStorage)
			m.enqueue(rec.FromWorker, rpc.Command{
				Kind: rpc.CmdDelete, Block: info.Block, Target: rec.FromStorage,
			})
		}
	}
	var after [core.NumTiers]int
	for _, r := range m.blocks.Replicas(rec.Block) {
		after[r.Tier]++
	}
	rec.AfterTiers = after
	rec.Outcome = rpc.MoveDone
	rec.FinishedNs = now.UnixNano()
	if rec.Kind == rpc.MovePromote {
		mv.counters.Promoted++
	} else {
		mv.counters.Demoted++
	}
	mv.counters.MovedBytes += rec.Bytes
	mv.cooldown[rec.Block] = now.Add(mv.cooldownSpan)
	mv.pushRecentLocked(*rec)
	m.cfg.Logger.Info("tier move completed",
		"block", rec.Block, "kind", rec.Kind,
		"from", rec.FromTier.String(), "to", rec.ToTier.String())
	m.journal.PublishTraced(events.Info, evBlockMoved, rec.TraceID,
		"replica moved between tiers by the heat-driven mover",
		"block", formatBlockID(rec.Block),
		"path", rec.Path,
		"kind", rec.Kind,
		"heat", fmt.Sprintf("%.2f", rec.Heat),
		"from", rec.FromTier.String(),
		"to", rec.ToTier.String(),
		"before", formatTierVector(rec.BeforeTiers),
		"after", formatTierVector(rec.AfterTiers),
		"bytes", strconv.FormatInt(rec.Bytes, 10))
}

// moverScheduleLocked turns the current tier-fitness findings into new
// moves, best-scored first, within the concurrency and bandwidth
// governors.
func (m *Master) moverScheduleLocked(now time.Time) {
	mv := m.mover
	snap := m.snapshot()
	if len(snap.Media) == 0 {
		return
	}
	entries := m.heat.blocks.Snapshot(now.UnixNano())
	if len(entries) == 0 {
		return
	}
	findings := m.misplacedFrom(entries, entries[0].Stat.Heat())
	for _, f := range findings {
		if _, busy := mv.inflight[f.Block]; busy {
			continue
		}
		if until, cool := mv.cooldown[f.Block]; cool && now.Before(until) {
			mv.counters.SkippedCooldown++
			continue
		}
		if len(mv.inflight) >= mv.maxMoves {
			mv.counters.SkippedConcurrency++
			continue
		}
		info, ok := m.blocks.Info(f.Block)
		if !ok || info.UnderConstruction {
			mv.counters.SkippedUnhealthy++
			continue
		}
		// Only steady, fully healthy blocks move: mid-repair blocks
		// belong to the replication monitor.
		if st, ok := m.blocks.State(f.Block); !ok || !st.Satisfied() {
			mv.counters.SkippedUnhealthy++
			continue
		}
		if mv.limited() && mv.budget <= 0 {
			mv.counters.SkippedBudget++
			continue
		}
		if m.startMoveLocked(snap, f, info, now) {
			mv.counters.Scheduled++
			if mv.limited() {
				mv.budget -= float64(info.Block.NumBytes)
			}
		}
	}
}

// startMoveLocked schedules one move: pick the replica to retire, ask
// the placement policy for a target medium on the destination tiers
// (with the surviving replicas as context), enqueue the replicate
// command, and record the decision in the explainability store.
func (m *Master) startMoveLocked(snap *policy.Snapshot, f rpc.MisplacedBlock, info blockmgmt.BlockInfo, now time.Time) bool {
	mv := m.mover
	promote := f.Kind == rpc.MisplacedHotOnCold

	// Promotion retires the coldest source replica, demotion the most
	// premium one.
	var victim blockmgmt.Replica
	found := false
	for _, r := range info.Replicas {
		if !found ||
			(promote && tierRank(r.Tier) > tierRank(victim.Tier)) ||
			(!promote && tierRank(r.Tier) < tierRank(victim.Tier)) {
			victim, found = r, true
		}
	}
	if !found {
		mv.counters.SkippedUnhealthy++
		return false
	}

	kind := rpc.MovePromote
	targetTiers := []core.StorageTier{core.TierMemory, core.TierSSD}
	if !promote {
		kind = rpc.MoveDemote
		targetTiers = []core.StorageTier{core.TierHDD, core.TierRemote}
	}

	existing := m.mediaFor(info.Replicas)
	if len(existing) == 0 {
		mv.counters.SkippedUnhealthy++
		return false
	}
	occupied := make(map[core.StorageID]bool, len(info.Replicas))
	for _, r := range info.Replicas {
		occupied[r.Storage] = true
	}

	var target policy.Media
	var decisions []policy.ReplicaDecision
	chosen := false
	explainer, canExplain := m.cfg.Placement.(policy.ExplainingPolicy)
	for _, tier := range targetTiers {
		req := policy.PlacementRequest{
			Snapshot:  snap,
			RepVector: core.ReplicationVector(0).WithTier(tier, 1),
			BlockSize: info.Block.NumBytes,
			Existing:  existing,
		}
		var tgts []policy.Media
		var perr error
		m.withRand(func(rng *rand.Rand) {
			req.Rand = rng
			if canExplain {
				tgts, decisions, perr = explainer.PlaceReplicasExplained(req)
			} else {
				tgts, perr = m.cfg.Placement.PlaceReplicas(req)
			}
		})
		if perr != nil || len(tgts) == 0 || occupied[tgts[0].ID] {
			continue
		}
		target = tgts[0]
		chosen = true
		break
	}
	if !chosen {
		mv.counters.SkippedNoTarget++
		return false
	}

	// Order the copy sources once with the retrieval policy, like
	// re-replication: the target worker copies from the best replica.
	var sources []core.BlockLocation
	var ordered []policy.Media
	m.withRand(func(rng *rand.Rand) {
		ordered = m.cfg.Retrieval.Order(policy.RetrievalRequest{
			Snapshot: snap,
			Replicas: existing,
			Rand:     rng,
		})
	})
	for _, src := range ordered {
		if loc, ok := m.locationFor(blockmgmt.Replica{Worker: src.Worker, Storage: src.ID, Tier: src.Tier}); ok {
			sources = append(sources, loc)
		}
	}
	if len(sources) == 0 {
		mv.counters.SkippedUnhealthy++
		return false
	}

	rec := &rpc.MoveRecord{
		Block:       f.Block,
		Path:        f.Path,
		Kind:        kind,
		Heat:        f.Heat,
		Bytes:       info.Block.NumBytes,
		FromTier:    victim.Tier,
		FromStorage: victim.Storage,
		FromWorker:  victim.Worker,
		ToTier:      target.Tier,
		ToStorage:   target.ID,
		ToWorker:    target.Worker,
		BeforeTiers: f.Tiers,
		StartedNs:   now.UnixNano(),
		Outcome:     rpc.MoveInFlight,
		TraceID:     rpc.NewRequestID(),
	}
	m.enqueue(target.Worker, rpc.Command{
		Kind:    rpc.CmdReplicate,
		Block:   info.Block,
		Target:  target.ID,
		Sources: sources,
	})
	mv.inflight[f.Block] = rec
	m.recordMove(rec, decisions)
	m.cfg.Logger.Info("tier move scheduled",
		"block", f.Block, "kind", kind, "path", f.Path,
		"from", string(victim.Storage), "to", string(target.ID))
	return true
}

// recordMove overwrites the block's explainability record with the
// mover's decision, so octopus-cli explain shows why the block last
// moved rather than where its write originally landed.
func (m *Master) recordMove(rec *rpc.MoveRecord, decisions []policy.ReplicaDecision) {
	be := rpc.BlockExplanation{
		Block:    rec.Block,
		TimeNs:   rec.StartedNs,
		TraceID:  rec.TraceID,
		Origin:   rec.Kind,
		Heat:     rec.Heat,
		Replicas: wireDecisions(decisions),
	}
	m.placeMu.Lock()
	if _, exists := m.placements[rec.Block]; !exists {
		m.placeOrder = append(m.placeOrder, rec.Block)
		for len(m.placeOrder) > placementCapacity {
			delete(m.placements, m.placeOrder[0])
			m.placeOrder = m.placeOrder[1:]
		}
	}
	m.placements[rec.Block] = be
	m.placeMu.Unlock()
}

// moverStatus assembles the mover observability document served by
// Master.GetMover and /debug/mover.
func (m *Master) moverStatus() rpc.MoverStatus {
	mv := m.mover
	st := rpc.MoverStatus{
		Enabled:       mv.enabled(),
		IntervalNs:    int64(mv.interval),
		MaxConcurrent: mv.maxMoves,
		BytesPerSec:   mv.bytesPerSec,
		CooldownNs:    int64(mv.cooldownSpan),
	}
	mv.mu.Lock()
	defer mv.mu.Unlock()
	for _, rec := range mv.inflight {
		st.InFlight = append(st.InFlight, *rec)
	}
	sort.Slice(st.InFlight, func(i, j int) bool { return st.InFlight[i].StartedNs < st.InFlight[j].StartedNs })
	st.Recent = append([]rpc.MoveRecord(nil), mv.recent...)
	st.Counters = mv.counters
	return st
}

// GetMover serves the tier mover's status. Untraced: pollers
// (octopus-cli mover, /debug/mover) would churn the trace store.
func (s *Service) GetMover(args *rpc.GetMoverArgs, reply *rpc.GetMoverReply) (err error) {
	defer s.m.trackOpUntraced("getMover", args.ReqID)(&err)
	reply.Status = s.m.moverStatus()
	return nil
}
