package master

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/rpc"
	"repro/internal/xfer"
)

// eventsPage mirrors the /debug/events JSON document.
type eventsPage struct {
	Events []events.Event    `json:"events"`
	Next   uint64            `json:"next"`
	Missed uint64            `json:"missed"`
	Counts map[string]uint64 `json:"counts"`
}

// getJSON fetches a URL and decodes the JSON body into out, returning
// the HTTP status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestHTTPDebugEventsEndpoint exercises the /debug/events route:
// registration events appear, ?type filters, ?since resumes the cursor
// without re-delivery, and malformed parameters are rejected.
func TestHTTPDebugEventsEndpoint(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400<<20, 120, 170))
	registerFakeWorker(t, m, "w2", "/r1", mediaStat("w2:hdd0", core.TierHDD, 400<<20, 120, 170))
	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr + "/debug/events"

	var page eventsPage
	if code := getJSON(t, base, &page); code != http.StatusOK {
		t.Fatalf("GET /debug/events = %d", code)
	}
	if len(page.Events) < 2 {
		t.Fatalf("events = %d, want >= 2 worker registrations", len(page.Events))
	}
	for i := 1; i < len(page.Events); i++ {
		if page.Events[i].Seq <= page.Events[i-1].Seq {
			t.Fatalf("seqs not monotonic: %d after %d", page.Events[i].Seq, page.Events[i-1].Seq)
		}
	}
	if page.Counts["worker_register"] != 2 {
		t.Errorf("counts[worker_register] = %d, want 2", page.Counts["worker_register"])
	}

	// Type filter returns only matching events.
	var filtered eventsPage
	getJSON(t, base+"?type=worker_register", &filtered)
	if len(filtered.Events) != 2 {
		t.Fatalf("filtered events = %d, want 2", len(filtered.Events))
	}
	for _, e := range filtered.Events {
		if e.Type != "worker_register" {
			t.Errorf("filter leaked event type %q", e.Type)
		}
	}

	// Cursoring: resuming from Next delivers only what was published
	// after the first page, never re-delivering.
	m.Journal().Publish(events.Info, "test_event", "one more")
	var next eventsPage
	getJSON(t, base+"?since="+utoa(page.Next), &next)
	if len(next.Events) != 1 || next.Events[0].Type != "test_event" {
		t.Fatalf("cursor page = %+v, want exactly the one new event", next.Events)
	}
	if next.Events[0].Seq <= page.Next {
		t.Errorf("new event seq %d not past cursor %d", next.Events[0].Seq, page.Next)
	}

	// Malformed parameters are 400s, not panics or empty pages.
	var ignore eventsPage
	if code := getJSON(t, base+"?since=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?since=bogus = %d, want 400", code)
	}
	if code := getJSON(t, base+"?limit=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?limit=bogus = %d, want 400", code)
	}
}

// TestHTTPDebugEventsEvictionChurn floods a deliberately tiny journal
// through the HTTP cursor and checks the exactly-once contract across
// eviction: no event is re-delivered, and every gap is accounted for in
// Missed rather than silently skipped.
func TestHTTPDebugEventsEvictionChurn(t *testing.T) {
	m := testMaster(t, func(cfg *Config) { cfg.EventCapacity = 64 })
	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr + "/debug/events"

	const total = 1000
	published := 0
	publish := func(n int) {
		for i := 0; i < n; i++ {
			m.Journal().Publish(events.Info, "churn", "spin")
			published++
		}
	}

	// The master journals its own lifecycle (master_started); start the
	// cursor past pre-existing events so the exactly-once accounting
	// below covers only this test's publishes.
	var cursor, delivered, missed uint64
	cursor = m.Journal().Since(0, "", 0).Next

	publish(100) // more than capacity before the first poll
	for {
		var page eventsPage
		getJSON(t, base+"?since="+utoa(cursor)+"&limit=25", &page)
		missed += page.Missed
		for _, e := range page.Events {
			if e.Seq <= cursor {
				t.Fatalf("re-delivered seq %d at cursor %d", e.Seq, cursor)
			}
			cursor = e.Seq
			delivered++
		}
		if page.Next > cursor {
			cursor = page.Next
		}
		if published < total {
			publish(75) // churn between polls, forcing eviction under the reader
		} else if len(page.Events) == 0 {
			break
		}
	}
	if delivered+missed != total {
		t.Fatalf("delivered %d + missed %d = %d, want %d (events lost or duplicated)",
			delivered, missed, delivered+missed, total)
	}
	if missed == 0 {
		t.Error("churn never outran the reader; eviction path untested")
	}
	if delivered == 0 {
		t.Error("reader never caught a retained event")
	}
}

// TestHTTPDebugHistoryEndpoint checks the /debug/history route serves
// the telemetry ring ending in a live sample and rejects bad params.
func TestHTTPDebugHistoryEndpoint(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400<<20, 120, 170))
	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Samples []rpc.ClusterSample `json:"samples"`
	}
	if code := getJSON(t, "http://"+addr+"/debug/history", &doc); code != http.StatusOK {
		t.Fatalf("GET /debug/history = %d", code)
	}
	if len(doc.Samples) == 0 {
		t.Fatal("no samples; the live sample must always be appended")
	}
	live := doc.Samples[len(doc.Samples)-1]
	if live.TimeNs == 0 || len(live.Workers) != 1 || live.Workers[0].ID != "w1" {
		t.Errorf("live sample = %+v, want one w1 worker with a timestamp", live)
	}
	if live.Workers[0].Capacity != 400<<20 {
		t.Errorf("w1 capacity = %d, want %d", live.Workers[0].Capacity, int64(400<<20))
	}

	doc.Samples = nil
	getJSON(t, "http://"+addr+"/debug/history?last=1", &doc)
	if len(doc.Samples) != 1 {
		t.Errorf("?last=1 returned %d samples", len(doc.Samples))
	}

	var ignore any
	if code := getJSON(t, "http://"+addr+"/debug/history?last=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?last=bogus = %d, want 400", code)
	}
}

// TestDecommissionRefusesReRegistration covers the operator-initiated
// removal path: the worker disappears, a decommission event is
// journaled, and the worker cannot come back.
func TestDecommissionRefusesReRegistration(t *testing.T) {
	m := testMaster(t)
	registerFakeWorker(t, m, "w1", "/r1", mediaStat("w1:hdd0", core.TierHDD, 400<<20, 120, 170))

	svc := &Service{m: m}
	if err := svc.Decommission(&rpc.DecommissionArgs{ID: "w1"}, &rpc.DecommissionReply{}); err != nil {
		t.Fatalf("Decommission: %v", err)
	}
	if m.NumWorkers() != 0 {
		t.Fatalf("workers = %d after decommission, want 0", m.NumWorkers())
	}
	page := m.Journal().Since(0, "worker_decommissioned", 0)
	if len(page.Events) != 1 {
		t.Fatalf("decommission events = %d, want 1", len(page.Events))
	}

	err := svc.Register(&rpc.RegisterArgs{
		ID: "w1", Node: "w1", Rack: "/r1", DataAddr: "127.0.0.1:1",
		Media: []rpc.MediaStat{mediaStat("w1:hdd0", core.TierHDD, 400<<20, 120, 170)},
	}, &rpc.RegisterReply{})
	if err == nil {
		t.Fatal("decommissioned worker re-registered")
	}

	if err := svc.Decommission(&rpc.DecommissionArgs{ID: "ghost"}, &rpc.DecommissionReply{}); err == nil {
		t.Fatal("decommission of unknown worker succeeded")
	}
}

// TestHTTPDebugMoverEndpoint exercises the /debug/mover route: the
// status document is served, ?limit trims the recent-move ring, and a
// malformed ?limit is a 400 rather than a panic or a silently full
// page (matching the /debug/audit parameter contract).
func TestHTTPDebugMoverEndpoint(t *testing.T) {
	m := testMaster(t)
	m.mover.mu.Lock()
	m.mover.pushRecentLocked(rpc.MoveRecord{Block: 1, Kind: "promote"})
	m.mover.pushRecentLocked(rpc.MoveRecord{Block: 2, Kind: "demote"})
	m.mover.mu.Unlock()
	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr + "/debug/mover"

	var st rpc.MoverStatus
	if code := getJSON(t, base, &st); code != http.StatusOK {
		t.Fatalf("GET /debug/mover = %d", code)
	}
	if len(st.Recent) != 2 {
		t.Fatalf("recent moves = %d, want 2", len(st.Recent))
	}

	var trimmed rpc.MoverStatus
	getJSON(t, base+"?limit=1", &trimmed)
	if len(trimmed.Recent) != 1 {
		t.Fatalf("recent moves with ?limit=1 = %d, want 1", len(trimmed.Recent))
	}
	if trimmed.Recent[0].Block != 2 {
		t.Errorf("?limit=1 kept block %d, want the newest (2)", trimmed.Recent[0].Block)
	}

	var ignore rpc.MoverStatus
	if code := getJSON(t, base+"?limit=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?limit=bogus = %d, want 400", code)
	}
}

// transfersPage mirrors the /debug/transfers JSON document.
type transfersPage struct {
	Entries []xfer.Record     `json:"entries"`
	Next    uint64            `json:"next"`
	Counts  map[string]uint64 `json:"counts"`
	Conns   *rpc.ConnStats    `json:"conns"`
}

// TestHTTPDebugTransfersEndpoint exercises the master's
// /debug/transfers route: appended records are served with the
// connection-lifecycle snapshot attached, ?op filters, ?since resumes
// the cursor, and malformed parameters are 400s.
func TestHTTPDebugTransfersEndpoint(t *testing.T) {
	m := testMaster(t)
	m.TransferLog().Append(xfer.Record{Op: "read", Source: "client", Block: 7, Result: "ok"})
	m.TransferLog().Append(xfer.Record{Op: "write", Source: "client", Block: 8, Result: "ok"})
	addr, err := m.ServeHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr + "/debug/transfers"

	var page transfersPage
	if code := getJSON(t, base, &page); code != http.StatusOK {
		t.Fatalf("GET /debug/transfers = %d", code)
	}
	if len(page.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(page.Entries))
	}
	if page.Counts["read"] != 1 || page.Counts["write"] != 1 {
		t.Errorf("counts = %v, want one read and one write", page.Counts)
	}
	if page.Conns == nil {
		t.Error("conns snapshot missing from /debug/transfers")
	}

	var filtered transfersPage
	getJSON(t, base+"?op=read", &filtered)
	if len(filtered.Entries) != 1 || filtered.Entries[0].Op != "read" {
		t.Fatalf("?op=read entries = %+v, want exactly the read record", filtered.Entries)
	}

	m.TransferLog().Append(xfer.Record{Op: "read", Source: "client", Block: 9, Result: "ok"})
	var next transfersPage
	getJSON(t, base+"?since="+utoa(page.Next), &next)
	if len(next.Entries) != 1 || next.Entries[0].Block != 9 {
		t.Fatalf("cursor page = %+v, want exactly the one new record", next.Entries)
	}

	var ignore transfersPage
	if code := getJSON(t, base+"?since=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?since=bogus = %d, want 400", code)
	}
	if code := getJSON(t, base+"?limit=bogus", &ignore); code != http.StatusBadRequest {
		t.Errorf("GET ?limit=bogus = %d, want 400", code)
	}
}

func utoa(v uint64) string {
	return formatBlockID(core.BlockID(v))
}
