package master

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/heat"
	"repro/internal/rpc"
	"repro/internal/topology"
)

// moverTestMaster builds a master whose monitor loop never ticks (the
// tests drive moverPass/repairBlocks by hand) with two workers: w1
// carries only HDD, w2 carries memory + HDD, so promotions have
// exactly one possible destination medium.
func moverTestMaster(t *testing.T, mutate ...func(*Config)) *Master {
	t.Helper()
	base := func(cfg *Config) {
		cfg.MonitorInterval = time.Hour // passes are driven by hand
		cfg.MoverCooldown = time.Hour
	}
	m := testMaster(t, append([]func(*Config){base}, mutate...)...)
	registerFakeWorker(t, m, "w1", "/r1",
		mediaStat("w1:hdd0", core.TierHDD, 4<<30, 120, 170))
	registerFakeWorker(t, m, "w2", "/r2",
		mediaStat("w2:mem0", core.TierMemory, 1<<30, 1000, 2000),
		mediaStat("w2:hdd0", core.TierHDD, 4<<30, 120, 170))
	return m
}

// moverTestBlock creates a one-block file pinned to rv, reports its
// single replica on the given medium, and commits it so the mover
// sees a steady, healthy block.
func moverTestBlock(t *testing.T, m *Master, path string, rv core.ReplicationVector, worker, storage string) core.Block {
	t.Helper()
	svc := &Service{m: m}
	if err := svc.Create(&rpc.CreateArgs{Path: path, RepVector: rv}, &rpc.CreateReply{}); err != nil {
		t.Fatal(err)
	}
	var reply rpc.AddBlockReply
	if err := svc.AddBlock(&rpc.AddBlockArgs{
		ReqHeader: rpc.ReqHeader{ReqID: rpc.NewRequestID()},
		Path:      path,
	}, &reply); err != nil {
		t.Fatal(err)
	}
	blk := reply.Located.Block
	blk.NumBytes = 1 << 20
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: core.WorkerID(worker), Storage: core.StorageID(storage), Block: blk,
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}
	if err := svc.CommitBlock(&rpc.CommitBlockArgs{Path: path, Block: blk}, &rpc.CommitBlockReply{}); err != nil {
		t.Fatal(err)
	}
	return blk
}

// heatUp injects read heat for a block through the heartbeat piggyback
// path, making it hot enough to cross the promotion cutoff.
func heatUp(t *testing.T, m *Master, worker string, blocks ...core.BlockID) {
	t.Helper()
	svc := &Service{m: m}
	deltas := make([]heat.Delta, 0, len(blocks))
	for _, id := range blocks {
		deltas = append(deltas, heat.Delta{Block: id, ReadOps: 100, ReadBytes: 100 << 20})
	}
	if err := svc.Heartbeat(&rpc.HeartbeatArgs{ID: core.WorkerID(worker), Heat: deltas},
		&rpc.HeartbeatReply{}); err != nil {
		t.Fatal(err)
	}
}

func pendingCommands(m *Master, worker core.WorkerID) []rpc.Command {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]rpc.Command(nil), m.pending[worker]...)
}

func TestMoverPromotesHotBlock(t *testing.T) {
	m := moverTestMaster(t)
	svc := &Service{m: m}
	blk := moverTestBlock(t, m, "/hot", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	heatUp(t, m, "w1", blk.ID)

	m.moverPass()

	if !m.moverBusy(blk.ID) {
		t.Fatal("no move in flight after a pass over a hot-on-cold block")
	}
	st := m.moverStatus()
	if len(st.InFlight) != 1 || st.Counters.Scheduled != 1 {
		t.Fatalf("status = %d in flight / %d scheduled, want 1 / 1", len(st.InFlight), st.Counters.Scheduled)
	}
	mov := st.InFlight[0]
	if mov.Kind != rpc.MovePromote || mov.FromStorage != "w1:hdd0" || mov.ToStorage != "w2:mem0" {
		t.Fatalf("in-flight move = %+v, want promote w1:hdd0 -> w2:mem0", mov)
	}
	if mov.Outcome != rpc.MoveInFlight || mov.BeforeTiers[core.TierHDD] != 1 || mov.Heat < 90 {
		t.Errorf("in-flight record = %+v, want in_flight, HDD:1 before, heat ~100", mov)
	}
	var repl *rpc.Command
	cmds := pendingCommands(m, "w2")
	for i, c := range cmds {
		if c.Kind == rpc.CmdReplicate && c.Block.ID == blk.ID {
			repl = &cmds[i]
		}
	}
	if repl == nil || repl.Target != "w2:mem0" || len(repl.Sources) == 0 {
		t.Fatalf("replicate command for w2 = %+v, want target w2:mem0 with sources", cmds)
	}

	// The copy lands. With two replicas against a one-replica vector the
	// block looks over-replicated, but the replication monitor must
	// leave the mid-move block to the mover.
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: "w2", Storage: "w2:mem0", Block: blk,
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}
	m.repairBlocks()
	if got := len(m.blocks.Replicas(blk.ID)); got != 2 {
		t.Fatalf("repair monitor touched a mid-move block: %d replicas, want 2", got)
	}

	m.moverPass()

	reps := m.blocks.Replicas(blk.ID)
	if len(reps) != 1 || reps[0].Storage != "w2:mem0" {
		t.Fatalf("replicas after move = %+v, want only w2:mem0", reps)
	}
	info, ok := m.blocks.Info(blk.ID)
	if !ok {
		t.Fatal("block vanished")
	}
	if info.Expected.Tier(core.TierMemory) != 1 || info.Expected.Tier(core.TierHDD) != 0 {
		t.Fatalf("expected vector not shifted with the pin: %v", info.Expected)
	}
	if bst, ok := m.blocks.State(blk.ID); !ok || !bst.Satisfied() {
		t.Errorf("block unhealthy after move: %+v", bst)
	}
	var deleted bool
	for _, c := range pendingCommands(m, "w1") {
		if c.Kind == rpc.CmdDelete && c.Block.ID == blk.ID && c.Target == "w1:hdd0" {
			deleted = true
		}
	}
	if !deleted {
		t.Error("source replica deletion never scheduled on w1")
	}

	st = m.moverStatus()
	if len(st.InFlight) != 0 || st.Counters.Promoted != 1 || st.Counters.MovedBytes != 1<<20 {
		t.Fatalf("status after completion = %+v", st.Counters)
	}
	if len(st.Recent) != 1 {
		t.Fatalf("recent moves = %d, want 1", len(st.Recent))
	}
	rec := st.Recent[0]
	if rec.Outcome != rpc.MoveDone || rec.FinishedNs == 0 {
		t.Errorf("finished record = %+v, want outcome moved with a finish time", rec)
	}
	if rec.AfterTiers[core.TierMemory] != 1 || rec.AfterTiers[core.TierHDD] != 0 {
		t.Errorf("after tiers = %v, want MEMORY:1", rec.AfterTiers)
	}

	page := m.Journal().Since(0, evBlockMoved, 0)
	if len(page.Events) != 1 {
		t.Fatalf("block_moved events = %d, want 1", len(page.Events))
	}
	e := page.Events[0]
	if e.Attrs["kind"] != rpc.MovePromote || e.Attrs["path"] != "/hot" ||
		e.Attrs["before"] != "HDD:1" || e.Attrs["after"] != "MEMORY:1" {
		t.Errorf("block_moved attrs = %+v", e.Attrs)
	}
	if e.TraceID == "" {
		t.Error("block_moved event not linked to the move's trace")
	}

	// explain now answers "why is this block in memory" with the move.
	m.placeMu.Lock()
	be := m.placements[blk.ID]
	m.placeMu.Unlock()
	if be.Origin != rpc.MovePromote || be.Heat < 90 {
		t.Errorf("explain record = origin %q heat %.2f, want promote ~100", be.Origin, be.Heat)
	}
}

func TestMoverDemotesColdBlock(t *testing.T) {
	m := moverTestMaster(t)
	svc := &Service{m: m}
	blk := moverTestBlock(t, m, "/cold", core.NewReplicationVector(1, 0, 0, 0, 0), "w2", "w2:mem0")
	// Touched once, twenty half-lives ago: decayed heat ~1e-6 ops while
	// a memory replica still holds the bytes.
	m.heat.blocks.Add(blk.ID, heat.Read, 1, 10,
		time.Now().Add(-20*heat.DefaultHalfLife).UnixNano())

	m.moverPass()

	st := m.moverStatus()
	if len(st.InFlight) != 1 {
		t.Fatalf("in flight = %d, want 1 demotion", len(st.InFlight))
	}
	mov := st.InFlight[0]
	if mov.Kind != rpc.MoveDemote || mov.FromStorage != "w2:mem0" || mov.ToTier != core.TierHDD {
		t.Fatalf("move = %+v, want demote w2:mem0 -> HDD", mov)
	}
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: mov.ToWorker, Storage: mov.ToStorage, Block: blk,
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}

	m.moverPass()

	reps := m.blocks.Replicas(blk.ID)
	if len(reps) != 1 || reps[0].Storage != mov.ToStorage {
		t.Fatalf("replicas after demotion = %+v, want only %s", reps, mov.ToStorage)
	}
	info, _ := m.blocks.Info(blk.ID)
	if info.Expected.Tier(core.TierMemory) != 0 || info.Expected.Tier(core.TierHDD) != 1 {
		t.Fatalf("expected vector not shifted: %v", info.Expected)
	}
	st = m.moverStatus()
	if st.Counters.Demoted != 1 {
		t.Errorf("counters = %+v, want one demotion", st.Counters)
	}
	page := m.Journal().Since(0, evBlockMoved, 0)
	if len(page.Events) != 1 || page.Events[0].Attrs["kind"] != rpc.MoveDemote ||
		page.Events[0].Attrs["before"] != "MEMORY:1" || page.Events[0].Attrs["after"] != "HDD:1" {
		t.Errorf("block_moved events = %+v", page.Events)
	}
}

func TestMoverConcurrencyCap(t *testing.T) {
	m := moverTestMaster(t, func(cfg *Config) { cfg.MoverMaxMoves = 1 })
	b1 := moverTestBlock(t, m, "/h1", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	b2 := moverTestBlock(t, m, "/h2", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	heatUp(t, m, "w1", b1.ID, b2.ID)

	m.moverPass()

	st := m.moverStatus()
	if len(st.InFlight) != 1 || st.Counters.Scheduled != 1 {
		t.Fatalf("in flight = %d / scheduled = %d, want 1 / 1 under MoverMaxMoves=1",
			len(st.InFlight), st.Counters.Scheduled)
	}
	if st.Counters.SkippedConcurrency == 0 {
		t.Error("second hot block not counted as skipped for concurrency")
	}
}

func TestMoverBandwidthBudget(t *testing.T) {
	m := moverTestMaster(t, func(cfg *Config) { cfg.MoverBytesPerSec = 1 })
	b1 := moverTestBlock(t, m, "/h1", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	b2 := moverTestBlock(t, m, "/h2", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	heatUp(t, m, "w1", b1.ID, b2.ID)

	m.moverPass()

	// Deficit-counter budget: the first 1 MiB block moves on a 1 B/s
	// budget (driving it negative), the second waits.
	st := m.moverStatus()
	if len(st.InFlight) != 1 || st.Counters.Scheduled != 1 {
		t.Fatalf("in flight = %d / scheduled = %d, want 1 / 1 on an exhausted budget",
			len(st.InFlight), st.Counters.Scheduled)
	}
	if st.Counters.SkippedBudget == 0 {
		t.Error("second hot block not counted as skipped for budget")
	}
}

func TestMoverCooldownPreventsRepeatMoves(t *testing.T) {
	m := moverTestMaster(t)
	blk := moverTestBlock(t, m, "/hot", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	heatUp(t, m, "w1", blk.ID)
	m.mover.mu.Lock()
	m.mover.cooldown[blk.ID] = time.Now().Add(time.Hour)
	m.mover.mu.Unlock()

	m.moverPass()

	st := m.moverStatus()
	if len(st.InFlight) != 0 || st.Counters.Scheduled != 0 {
		t.Fatalf("cooled-down block still moved: %+v", st.Counters)
	}
	if st.Counters.SkippedCooldown == 0 {
		t.Error("cooldown skip not counted")
	}
}

func TestMoverExpiresUnconfirmedMoves(t *testing.T) {
	m := moverTestMaster(t, func(cfg *Config) { cfg.MoverInterval = time.Millisecond })
	blk := moverTestBlock(t, m, "/hot", core.NewReplicationVector(0, 0, 1, 0, 0), "w1", "w1:hdd0")
	heatUp(t, m, "w1", blk.ID)

	m.moverPass()
	if !m.moverBusy(blk.ID) {
		t.Fatal("move not scheduled")
	}
	// The copy never confirms; past moverConfirmTicks intervals the
	// move is abandoned and the block cools down instead of wedging a
	// concurrency slot forever.
	time.Sleep(50 * time.Millisecond)
	m.moverPass()

	st := m.moverStatus()
	if len(st.InFlight) != 0 || st.Counters.Expired != 1 {
		t.Fatalf("status after deadline = %d in flight, counters %+v", len(st.InFlight), st.Counters)
	}
	if len(st.Recent) != 1 || st.Recent[0].Outcome != rpc.MoveExpired {
		t.Fatalf("recent = %+v, want one expired move", st.Recent)
	}
	if got := len(m.blocks.Replicas(blk.ID)); got != 1 {
		t.Errorf("replicas after expired move = %d, want the untouched source", got)
	}
	if n := len(m.Journal().Since(0, evBlockMoveExpired, 0).Events); n != 1 {
		t.Errorf("block_move_expired events = %d, want 1", n)
	}
}

// Satellite regression: a failed write pipeline must release the
// scheduled-load counters its AddBlock took out; before the fix they
// leaked forever and skewed placement load scoring.
func TestAbandonedWriteDrainsScheduledLoad(t *testing.T) {
	m := testMaster(t, func(cfg *Config) { cfg.MonitorInterval = time.Hour })
	registerFakeWorker(t, m, "w1", "/r1",
		mediaStat("w1:hdd0", core.TierHDD, 4<<30, 120, 170))
	svc := &Service{m: m}

	scheduledOn := func(sid core.StorageID) int {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.scheduled[sid]
	}
	outstanding := func() int {
		m.mu.Lock()
		defer m.mu.Unlock()
		return len(m.schedTargets)
	}
	addBlock := func(path string) core.Block {
		if err := svc.Create(&rpc.CreateArgs{
			Path: path, RepVector: core.ReplicationVectorFromFactor(1),
		}, &rpc.CreateReply{}); err != nil {
			t.Fatal(err)
		}
		var reply rpc.AddBlockReply
		if err := svc.AddBlock(&rpc.AddBlockArgs{
			ReqHeader: rpc.ReqHeader{ReqID: rpc.NewRequestID()}, Path: path,
		}, &reply); err != nil {
			t.Fatal(err)
		}
		return reply.Located.Block
	}

	// Dead pipeline, single block abandoned.
	blk := addBlock("/f")
	if got := scheduledOn("w1:hdd0"); got != 1 {
		t.Fatalf("scheduled after AddBlock = %d, want 1", got)
	}
	if err := svc.AbandonBlock(&rpc.AbandonBlockArgs{Path: "/f", Block: blk},
		&rpc.AbandonBlockReply{}); err != nil {
		t.Fatal(err)
	}
	if got := scheduledOn("w1:hdd0"); got != 0 {
		t.Fatalf("scheduled after AbandonBlock = %d, want 0", got)
	}

	// Dead writer, whole file abandoned.
	addBlock("/g")
	if err := svc.Abandon(&rpc.AbandonArgs{Path: "/g"}, &rpc.AbandonReply{}); err != nil {
		t.Fatal(err)
	}
	if got := scheduledOn("w1:hdd0"); got != 0 {
		t.Fatalf("scheduled after Abandon = %d, want 0", got)
	}
	if got := outstanding(); got != 0 {
		t.Fatalf("outstanding pipeline-target entries = %d, want 0", got)
	}

	// The happy path still balances, and a confirmation for an
	// unrelated block (replication, duplicate report) must not release
	// another pipeline's count.
	done := addBlock("/h")
	done.NumBytes = 1 << 20
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: "w1", Storage: "w1:hdd0", Block: done,
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}
	if err := svc.CommitBlock(&rpc.CommitBlockArgs{Path: "/h", Block: done},
		&rpc.CommitBlockReply{}); err != nil {
		t.Fatal(err)
	}
	addBlock("/i") // outstanding pipeline holds one slot
	if err := svc.BlockReceived(&rpc.BlockReceivedArgs{
		ID: "w1", Storage: "w1:hdd0", Block: done, // duplicate confirm for /h
	}, &rpc.BlockReceivedReply{}); err != nil {
		t.Fatal(err)
	}
	if got := scheduledOn("w1:hdd0"); got != 1 {
		t.Fatalf("scheduled after unrelated confirm = %d, want the /i pipeline's 1", got)
	}
}

// Satellite regression: losing one of several workers co-hosted on a
// node must not evict the node from the topology — the survivors
// still define its fault domain.
func TestCoHostedWorkerLossKeepsNodeMapping(t *testing.T) {
	m := testMaster(t, func(cfg *Config) { cfg.MonitorInterval = time.Hour })
	svc := &Service{m: m}
	reg := func(id, node string) {
		t.Helper()
		if err := svc.Register(&rpc.RegisterArgs{
			ID: core.WorkerID(id), Node: node, Rack: "/r1",
			DataAddr: "127.0.0.1:1", NetMBps: 1250,
			Media: []rpc.MediaStat{mediaStat(id+":hdd0", core.TierHDD, 4<<30, 120, 170)},
		}, &rpc.RegisterReply{}); err != nil {
			t.Fatalf("Register(%s): %v", id, err)
		}
	}
	reg("wa", "shared")
	reg("wb", "shared")
	if got := m.topo.RackOf("shared"); got != "/r1" {
		t.Fatalf("node not mapped after registration: rack = %q", got)
	}

	// Expire wa only; wb still lives on the node.
	m.mu.Lock()
	m.workers["wa"].lastSeen = time.Now().Add(-time.Hour)
	m.mu.Unlock()
	m.expireWorkers()
	if m.NumWorkers() != 1 {
		t.Fatalf("workers after expiry = %d, want 1", m.NumWorkers())
	}
	if got := m.topo.RackOf("shared"); got != "/r1" {
		t.Fatalf("expiring a co-hosted worker dropped the node mapping: rack = %q", got)
	}

	// Decommissioning with a live co-hosted peer keeps the node too.
	reg("wc", "shared2")
	reg("wd", "shared2")
	if err := m.decommission("wc", "test"); err != nil {
		t.Fatal(err)
	}
	if got := m.topo.RackOf("shared2"); got != "/r1" {
		t.Fatalf("decommissioning a co-hosted worker dropped the node mapping: rack = %q", got)
	}

	// Only the last worker leaving removes the node.
	if err := m.decommission("wb", "test"); err != nil {
		t.Fatal(err)
	}
	if got := m.topo.RackOf("shared"); got != topology.DefaultRack {
		t.Fatalf("node mapping survived its last worker: rack = %q", got)
	}
}

// Satellite regression: a repair that could not be scheduled (no
// feasible placement yet) must not arm the backoff marker — the next
// tick has to retry immediately once capacity appears.
func TestRepairRetriesAfterInfeasiblePlacement(t *testing.T) {
	m := testMaster(t, func(cfg *Config) { cfg.MonitorInterval = time.Hour })
	registerFakeWorker(t, m, "w1", "/r1",
		mediaStat("w1:hdd0", core.TierHDD, 4<<30, 120, 170))
	svc := &Service{m: m}
	blk := moverTestBlock(t, m, "/f", core.ReplicationVectorFromFactor(1), "w1", "w1:hdd0")
	if err := svc.SetReplication(&rpc.SetReplicationArgs{
		Path: "/f", RepVector: core.ReplicationVectorFromFactor(2),
	}, &rpc.SetReplicationReply{}); err != nil {
		t.Fatal(err)
	}

	// One worker, one occupied medium: the second replica has nowhere
	// to go, so no repair command is issued and no backoff is armed.
	m.repairBlocks()
	m.mu.Lock()
	armed := len(m.repairing)
	m.mu.Unlock()
	if armed != 0 {
		t.Fatalf("repair backoff armed with nothing scheduled (%d markers)", armed)
	}

	// Capacity appears; the very next tick must schedule the copy.
	registerFakeWorker(t, m, "w2", "/r2",
		mediaStat("w2:hdd0", core.TierHDD, 4<<30, 120, 170))
	time.Sleep(snapshotTTL + 10*time.Millisecond) // bust the cached policy snapshot
	m.repairBlocks()

	var scheduled bool
	for _, c := range pendingCommands(m, "w2") {
		if c.Kind == rpc.CmdReplicate && c.Block.ID == blk.ID && c.Target == "w2:hdd0" {
			scheduled = true
		}
	}
	if !scheduled {
		t.Fatal("re-replication not scheduled on the next tick after capacity appeared")
	}
	m.mu.Lock()
	armed = len(m.repairing)
	m.mu.Unlock()
	if armed != 1 {
		t.Errorf("repair backoff markers = %d, want 1 after scheduling", armed)
	}
}
