package master

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/httpjson"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// StatusReport is the JSON document served at /status — the moral
// equivalent of the HDFS NameNode web UI's overview page, extended
// with per-tier statistics (paper Table 1's getStorageTierReports).
type StatusReport struct {
	Address     string            `json:"address"`
	Uptime      string            `json:"uptime"`
	Directories int               `json:"directories"`
	Files       int               `json:"files"`
	Blocks      int               `json:"blocks"`
	Workers     []StatusWorker    `json:"workers"`
	Tiers       []StatusTier      `json:"tiers"`
	Policies    map[string]string `json:"policies"`
}

// StatusWorker summarises one live worker for /status.
type StatusWorker struct {
	ID       core.WorkerID `json:"id"`
	Node     string        `json:"node"`
	Rack     string        `json:"rack"`
	Media    int           `json:"media"`
	LastSeen string        `json:"lastSeen"`
}

// StatusTier summarises one storage tier for /status.
type StatusTier struct {
	Tier             string  `json:"tier"`
	Media            int     `json:"media"`
	Workers          int     `json:"workers"`
	CapacityMB       int64   `json:"capacityMB"`
	RemainingMB      int64   `json:"remainingMB"`
	RemainingPercent float64 `json:"remainingPercent"`
	WriteMBps        float64 `json:"writeMBps"`
	ReadMBps         float64 `json:"readMBps"`
}

// ServeHTTP starts an HTTP status server on addr and returns its bound
// address. Endpoints: /status (JSON), /metrics (Prometheus text, or
// JSON with ?format=json), /healthz, and / (plain-text overview). The
// server stops when the master closes.
func (m *Master) ServeHTTP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("master: http listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, m.statusReport())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			m.metrics.reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.metrics.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /debug/traces/<id> serves the cluster-assembled timeline (the
	// master fans out to live workers); the list shows the local store.
	trace.RegisterDebugHandlers(mux, m.traces, m.AssembleTrace)
	// /debug/events serves the cluster event journal with ?since
	// cursoring; /debug/history the sampled telemetry ring.
	events.RegisterDebugHandler(mux, m.journal)
	// /debug/audit serves the namespace audit log with the same
	// cursoring plus an ?op filter.
	audit.RegisterDebugHandler(mux, m.audit)
	mux.HandleFunc("/debug/history", func(w http.ResponseWriter, r *http.Request) {
		last, ok := httpjson.IntParam(w, r, "last", 0)
		if !ok {
			return
		}
		httpjson.Write(w, struct {
			Samples []rpc.ClusterSample `json:"samples"`
		}{m.clusterHistory(last)})
	})
	// /debug/heat serves the cluster heat map and tier-fitness report;
	// ?top= caps the lists, ?file= restricts to one file's blocks,
	// ?misplaced omits the rankings and returns only the fitness report.
	mux.HandleFunc("/debug/heat", func(w http.ResponseWriter, r *http.Request) {
		top, ok := httpjson.IntParam(w, r, "top", 0)
		if !ok {
			return
		}
		misplaced, ok := httpjson.BoolParam(w, r, "misplaced", false)
		if !ok {
			return
		}
		httpjson.Write(w, m.heatReport(top, r.URL.Query().Get("file"), misplaced))
	})
	// /debug/mover serves the tier mover's status: governors,
	// in-flight moves, the recent-move ring, and counters. ?limit=
	// trims the recent-move ring (newest first).
	mux.HandleFunc("/debug/mover", func(w http.ResponseWriter, r *http.Request) {
		limit, ok := httpjson.IntParam(w, r, "limit", 0)
		if !ok {
			return
		}
		st := m.moverStatus()
		if limit > 0 && len(st.Recent) > limit {
			st.Recent = st.Recent[:limit]
		}
		httpjson.Write(w, st)
	})
	// /debug/transfers serves the master's transfer flight recorder
	// (client-reported records) with ?since/?op/?limit cursoring, plus
	// the process-wide data-connection lifecycle counters.
	xfer.RegisterDebugHandler(mux, m.xfers, func() any { return rpc.DataConnStats() })
	if m.cfg.Pprof {
		registerPprof(mux)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		st := m.statusReport()
		fmt.Fprintf(w, "OctopusFS master %s — up %s\n\n", st.Address, st.Uptime)
		fmt.Fprintf(w, "namespace: %d directories, %d files, %d blocks\n\n",
			st.Directories, st.Files, st.Blocks)
		fmt.Fprintf(w, "%-10s%8s%10s%14s%14s%10s\n",
			"tier", "media", "workers", "capacity MB", "remaining MB", "rem %")
		for _, t := range st.Tiers {
			fmt.Fprintf(w, "%-10s%8d%10d%14d%14d%9.1f%%\n",
				t.Tier, t.Media, t.Workers, t.CapacityMB, t.RemainingMB, t.RemainingPercent)
		}
		fmt.Fprintf(w, "\n%d live workers:\n", len(st.Workers))
		for _, wk := range st.Workers {
			fmt.Fprintf(w, "  %-12s rack=%-10s media=%d last-seen=%s\n",
				wk.ID, wk.Rack, wk.Media, wk.LastSeen)
		}
	})
	srv := &http.Server{Handler: mux}
	m.mu.Lock()
	m.httpAddr = ln.Addr().String()
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		srv.Serve(ln)
	}()
	go func() {
		<-m.done
		srv.Close()
	}()
	return ln.Addr().String(), nil
}

// registerPprof mounts the standard net/http/pprof handlers on a
// custom mux (the package's init only touches http.DefaultServeMux).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusReport assembles the current /status document.
func (m *Master) statusReport() StatusReport {
	dirs, files, blocks := m.ns.Stats()
	st := StatusReport{
		Address:     m.Addr(),
		Uptime:      time.Since(m.started).Round(time.Second).String(),
		Directories: dirs,
		Files:       files,
		Blocks:      blocks,
		Policies: map[string]string{
			"placement": m.cfg.Placement.Name(),
			"retrieval": m.cfg.Retrieval.Name(),
		},
	}
	m.mu.RLock()
	for _, w := range m.workers {
		st.Workers = append(st.Workers, StatusWorker{
			ID: w.id, Node: w.node, Rack: w.rack,
			Media:    len(w.media),
			LastSeen: time.Since(w.lastSeen).Round(time.Millisecond).String() + " ago",
		})
	}
	m.mu.RUnlock()
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	for _, r := range m.tierReports() {
		st.Tiers = append(st.Tiers, StatusTier{
			Tier:             r.Tier.String(),
			Media:            r.NumMedia,
			Workers:          r.NumWorkers,
			CapacityMB:       r.Capacity >> 20,
			RemainingMB:      r.Remaining >> 20,
			RemainingPercent: r.PercentRemaining(),
			WriteMBps:        r.WriteThruMBps,
			ReadMBps:         r.ReadThruMBps,
		})
	}
	return st
}
