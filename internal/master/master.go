// Package master implements the OctopusFS Primary and Backup Masters
// (paper §2.1): the directory namespace service, the block-location
// map, worker registration and heartbeating, tier statistics, and the
// replication monitor that keeps every block at its intended per-tier
// replica counts (paper §5). Placement and retrieval decisions are
// delegated to the pluggable policies of internal/policy.
package master

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	netrpc "net/rpc"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/blockmgmt"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/namespace"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// Config configures a Master.
type Config struct {
	// ListenAddr is the RPC endpoint ("host:port"; ":0" for tests).
	ListenAddr string

	// MetaDir persists the namespace (fsimage + edit log). Empty runs
	// the namespace in memory only.
	MetaDir string

	// EditLogSync fsyncs the edit log after every append, trading
	// mutation latency for durability of each acknowledged operation.
	// Off by default (matching HDFS's default hflush semantics); the
	// audit log and metrics record the fsync cost when enabled.
	EditLogSync bool

	// AuditCapacity bounds the namespace audit log ring; zero selects
	// audit.DefaultCapacity.
	AuditCapacity int

	// TransferCapacity bounds the master's transfer flight recorder
	// (which holds client-reported records); zero selects
	// xfer.DefaultCapacity.
	TransferCapacity int

	// Placement chooses replica locations; nil selects the default
	// MOOP policy (paper §3.3).
	Placement policy.PlacementPolicy

	// Retrieval orders replica locations for readers; nil selects the
	// default OctopusFS rate-based policy (paper §4.2).
	Retrieval policy.RetrievalPolicy

	// BlockSize is the default block size for new files.
	BlockSize int64

	// WorkerTimeout expires workers that stop heartbeating.
	WorkerTimeout time.Duration

	// MonitorInterval paces the replication monitor.
	MonitorInterval time.Duration

	// LeaseTimeout abandons under-construction files whose writer has
	// gone silent (simplified HDFS lease recovery).
	LeaseTimeout time.Duration

	// ReportGrace exempts replicas added within this window from
	// block-report reconciliation (a report generated before a
	// pipeline write completed must not erase the fresh replica).
	ReportGrace time.Duration

	// Seed seeds the randomness used for placement tie-breaking.
	Seed int64

	// Logger receives operational logs; nil discards them.
	Logger *slog.Logger

	// SlowOpThreshold is the latency above which an RPC operation is
	// logged as slow with its request ID. Zero logs every operation;
	// negative disables slow-op logging. Daemons default it to 100ms
	// via their -slowop flag.
	SlowOpThreshold time.Duration

	// TraceSample is the fraction of non-slow traces the in-memory
	// trace store retains; slow traces (per SlowOpThreshold) are
	// always kept. Zero selects the default (trace.DefaultSample);
	// negative keeps only slow traces.
	TraceSample float64

	// TraceCapacity bounds the number of retained traces; zero
	// selects trace.DefaultCapacity.
	TraceCapacity int

	// EventCapacity bounds the cluster event journal; zero selects
	// events.DefaultCapacity.
	EventCapacity int

	// HistoryInterval paces telemetry history sampling; zero selects
	// the default (2s). Negative disables sampling (GetClusterHistory
	// then returns only a live sample).
	HistoryInterval time.Duration

	// HeatHalfLife is the decay half-life of the access-heat counters;
	// zero selects heat.DefaultHalfLife (60s).
	HeatHalfLife time.Duration

	// HeatCapacity bounds the block heat map (the file heat map gets a
	// quarter of it); zero selects heat.DefaultMapCapacity.
	HeatCapacity int

	// MoverInterval paces the background tier mover that acts on the
	// tier-fitness findings; zero selects the default (2s), negative
	// disables the mover. The mover runs from the monitor loop, so its
	// effective cadence is at least MonitorInterval.
	MoverInterval time.Duration

	// MoverMaxMoves caps concurrent in-flight tier moves; zero selects
	// the default (4).
	MoverMaxMoves int

	// MoverBytesPerSec budgets the replication traffic the mover may
	// generate; zero selects the default (64 MiB/s), negative removes
	// the budget.
	MoverBytesPerSec int64

	// MoverCooldown is the per-block hysteresis window after any
	// completed or expired move, so flapping heat cannot thrash a
	// block between tiers; zero selects the default (30s).
	MoverCooldown time.Duration

	// Pprof mounts net/http/pprof under /debug/pprof/ on the HTTP
	// endpoint. Off by default: profiling endpoints should be opted
	// into on production daemons.
	Pprof bool
}

func (c *Config) fillDefaults() {
	if c.Placement == nil {
		c.Placement = policy.NewMOOPPolicy(policy.DefaultMOOPConfig())
	}
	if c.Retrieval == nil {
		c.Retrieval = policy.NewOctopusRetrievalPolicy()
	}
	if c.BlockSize <= 0 {
		c.BlockSize = core.DefaultBlockSize
	}
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = 10 * time.Second
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 500 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = time.Minute
	}
	if c.ReportGrace == 0 {
		c.ReportGrace = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
}

// workerState is the master-side record of one live worker.
type workerState struct {
	id       core.WorkerID
	node     string
	rack     string
	dataAddr string
	httpAddr string
	netMBps  float64
	netConns int
	media    map[core.StorageID]rpc.MediaStat
	lastSeen time.Time
}

// Master is a Primary Master instance.
type Master struct {
	cfg    Config
	ns     *namespace.Namespace
	blocks *blockmgmt.Manager
	topo   *topology.Map

	mu      sync.RWMutex
	workers map[core.WorkerID]*workerState
	pending map[core.WorkerID][]rpc.Command
	// scheduled tracks write pipelines handed out but not yet
	// confirmed via BlockReceived, so placement sees in-flight load
	// between heartbeats.
	scheduled map[core.StorageID]int
	// schedTargets records, per in-flight block, the pipeline targets
	// still awaiting BlockReceived, so the scheduled counts drain when
	// a pipeline dies (abandon, lease recovery) instead of leaking.
	schedTargets map[core.BlockID][]core.StorageID
	// repairing de-duplicates replication work across monitor ticks.
	repairing map[core.BlockID]time.Time

	started time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	snapMu    sync.Mutex
	snapshot_ *policy.Snapshot
	snapTime  time.Time

	metrics *masterMetrics
	traces  *trace.Store
	tracer  *trace.Tracer
	journal *events.Journal
	audit   *audit.Log
	xfers   *xfer.Log

	unhookDial func() // deregisters the repeated-dial-failure journal hook

	// decommissioned workers may not re-register; guarded by mu.
	decommissioned map[core.WorkerID]struct{}
	// httpAddr is the bound debug HTTP endpoint (set by ServeHTTP);
	// guarded by mu.
	httpAddr string

	histMu    sync.Mutex
	history   []rpc.ClusterSample // telemetry ring, len == historyCapacity
	histStart int
	histN     int

	placeMu    sync.Mutex
	placements map[core.BlockID]rpc.BlockExplanation
	placeOrder []core.BlockID // FIFO eviction order

	// heat is the access-heat plane: decayed per-block/per-file
	// counters and the block → path index (see heat.go).
	heat *heatPlane

	// mover is the background tier mover acting on the heat plane's
	// tier-fitness findings (see mover.go).
	mover *mover

	ln     net.Listener
	srv    *netrpc.Server
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// New starts a Master listening on cfg.ListenAddr.
func New(cfg Config) (*Master, error) {
	cfg.fillDefaults()
	loadStart := time.Now()
	ns, err := namespace.OpenWithOptions(cfg.MetaDir, namespace.Options{
		SyncEdits: cfg.EditLogSync,
	})
	if err != nil {
		return nil, err
	}
	loadDur := time.Since(loadStart)
	m := &Master{
		cfg:            cfg,
		ns:             ns,
		blocks:         blockmgmt.NewManager(),
		topo:           topology.NewMap(),
		workers:        make(map[core.WorkerID]*workerState),
		pending:        make(map[core.WorkerID][]rpc.Command),
		scheduled:      make(map[core.StorageID]int),
		schedTargets:   make(map[core.BlockID][]core.StorageID),
		repairing:      make(map[core.BlockID]time.Time),
		decommissioned: make(map[core.WorkerID]struct{}),
		history:        make([]rpc.ClusterSample, historyCapacity),
		placements:     make(map[core.BlockID]rpc.BlockExplanation),
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		done:           make(chan struct{}),
		conns:          make(map[net.Conn]struct{}),
		started:        time.Now(),
	}
	m.journal = events.NewJournal(cfg.EventCapacity)
	m.audit = audit.New(cfg.AuditCapacity)
	m.xfers = xfer.New(cfg.TransferCapacity)
	// The master dials worker data ports for trace and transfer-dump
	// fan-outs; repeated dial failures to one worker surface as a
	// cluster event rather than only fan-out warnings.
	m.unhookDial = rpc.OnRepeatedDialFailure(func(addr string, consecutive int) {
		m.journal.Publish(events.Warn, evWorkerUnreachable,
			"repeated data-connection dial failures to worker",
			"addr", addr, "consecutive", strconv.Itoa(consecutive))
	})
	// A persistent namespace journals its recovery cost: how big the
	// checkpoint was, how long it took to load, and how many edits
	// replayed on top — the numbers that decide when to re-checkpoint.
	if cfg.MetaDir != "" {
		rec := ns.Recovery()
		m.journal.Publish(events.Info, evImageLoaded,
			"namespace image loaded and edit log replayed",
			"image_bytes", strconv.FormatInt(rec.ImageBytes, 10),
			"image_load_ms", formatMillis(rec.ImageLoadNs),
			"edits_replayed", strconv.Itoa(rec.EditsReplayed),
			"replay_ms", formatMillis(rec.ReplayNs),
			"open_ms", formatMillis(loadDur.Nanoseconds()))
	}
	m.heat = newHeatPlane(cfg.HeatHalfLife, cfg.HeatCapacity)
	m.mover = newMover(cfg)
	m.traces = trace.NewStore(cfg.TraceCapacity, cfg.SlowOpThreshold, cfg.TraceSample)
	m.tracer = trace.NewTracer("master", m.traces)
	m.metrics = newMasterMetrics(m)
	m.metrics.slow.SetSink(func(op, reqID string, d time.Duration) {
		m.journal.PublishTraced(events.Warn, evSlowOp, reqID,
			"slow operation on master", "op", op, "dur", d.String())
	})
	// Rebuild the block map from the recovered namespace; replica
	// locations arrive via the workers' block reports.
	ns.ForEachFile(func(path string, blocks []core.Block, rv core.ReplicationVector) {
		for _, b := range blocks {
			m.blocks.AddBlock(b, rv)
			// Recovered blocks are committed: release them to the
			// replication monitor right away.
			m.blocks.CommitBlock(b)
			m.heat.indexBlock(b.ID, path)
		}
	})

	m.srv = netrpc.NewServer()
	if err := m.srv.RegisterName("Master", &Service{m: m}); err != nil {
		ns.Close()
		return nil, fmt.Errorf("master: registering RPC service: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		ns.Close()
		return nil, fmt.Errorf("master: listening on %s: %w", cfg.ListenAddr, err)
	}
	m.ln = ln
	m.wg.Add(2)
	go m.serve()
	go m.monitor()
	m.cfg.Logger.Info("master started", "addr", ln.Addr().String())
	dirs, files, blocks := ns.Stats()
	m.journal.Publish(events.Info, evMasterStarted,
		"master started and serving RPC",
		"addr", ln.Addr().String(),
		"directories", strconv.Itoa(dirs),
		"files", strconv.Itoa(files),
		"blocks", strconv.Itoa(blocks),
		"edits_replayed", strconv.Itoa(ns.Recovery().EditsReplayed))
	return m, nil
}

// formatMillis renders a nanosecond duration as fractional
// milliseconds for journal attributes.
func formatMillis(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64)
}

// Addr returns the master's RPC address.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Namespace exposes the namespace for checkpoint orchestration.
func (m *Master) Namespace() *namespace.Namespace { return m.ns }

// Close shuts the master down.
func (m *Master) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	if m.unhookDial != nil {
		m.unhookDial()
	}
	m.ln.Close()
	// Close accepted RPC connections too, so clients and workers
	// notice the shutdown immediately instead of talking to a dead
	// master object over surviving TCP connections.
	m.connMu.Lock()
	for conn := range m.conns {
		conn.Close()
	}
	m.connMu.Unlock()
	m.wg.Wait()
	return m.ns.Close()
}

func (m *Master) serve() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.done:
				return
			default:
				m.cfg.Logger.Warn("accept failed", "err", err)
				continue
			}
		}
		m.connMu.Lock()
		m.conns[conn] = struct{}{}
		m.connMu.Unlock()
		go func() {
			// The instrumented codec stamps request arrival times (for
			// queue-wait attribution) and feeds the in-flight gauge.
			m.srv.ServeCodec(newServerCodec(conn, m.metrics.rpcInflight))
			m.connMu.Lock()
			delete(m.conns, conn)
			m.connMu.Unlock()
			conn.Close()
		}()
	}
}

// withRand runs fn with the master's seeded rng under its lock.
func (m *Master) withRand(fn func(*rand.Rand)) {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	fn(m.rng)
}

// snapshotTTL bounds how stale a cached policy snapshot may be. Worker
// statistics only change on heartbeats anyway, so a short cache keeps
// the per-request cost of read-path policy decisions near zero (the
// paper's §7.4 finding that tier management adds <1%% overhead).
const snapshotTTL = 20 * time.Millisecond

// snapshot returns the policy view of the current cluster state,
// cached for snapshotTTL. Callers must not hold m.mu.
func (m *Master) snapshot() *policy.Snapshot {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	if m.snapshot_ != nil && time.Since(m.snapTime) < snapshotTTL {
		return m.snapshot_
	}
	m.mu.RLock()
	snap := m.snapshotLocked()
	m.mu.RUnlock()
	m.snapshot_ = snap
	m.snapTime = time.Now()
	return snap
}

func (m *Master) snapshotLocked() *policy.Snapshot {
	s := &policy.Snapshot{
		Workers:  make(map[core.WorkerID]policy.WorkerInfo, len(m.workers)),
		NumRacks: m.topo.NumRacks(),
	}
	for id, w := range m.workers {
		s.Workers[id] = policy.WorkerInfo{
			ID:          id,
			Node:        w.node,
			Rack:        w.rack,
			NetThruMBps: w.netMBps,
			Connections: w.netConns,
		}
		for sid, ms := range w.media {
			s.Media = append(s.Media, policy.Media{
				ID:            sid,
				Worker:        id,
				Node:          w.node,
				Tier:          ms.Tier,
				Rack:          w.rack,
				Capacity:      ms.Capacity,
				Remaining:     ms.Remaining,
				Connections:   ms.Connections + m.scheduled[sid],
				WriteThruMBps: ms.WriteMBps,
				ReadThruMBps:  ms.ReadMBps,
			})
		}
	}
	policy.SortMediaStable(s.Media)
	return s
}

// locationFor converts a block-map replica into a client-visible
// BlockLocation; ok=false if the hosting worker is gone.
func (m *Master) locationFor(r blockmgmt.Replica) (core.BlockLocation, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	w, ok := m.workers[r.Worker]
	if !ok {
		return core.BlockLocation{}, false
	}
	return core.BlockLocation{
		Worker:  r.Worker,
		Address: w.dataAddr,
		Storage: r.Storage,
		Tier:    r.Tier,
		Rack:    w.rack,
	}, true
}

// mediaFor converts replicas into policy.Media descriptors with
// live statistics for the retrieval policy.
func (m *Master) mediaFor(replicas []blockmgmt.Replica) []policy.Media {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]policy.Media, 0, len(replicas))
	for _, r := range replicas {
		w, ok := m.workers[r.Worker]
		if !ok {
			continue
		}
		ms, ok := w.media[r.Storage]
		if !ok {
			continue
		}
		out = append(out, policy.Media{
			ID:            r.Storage,
			Worker:        r.Worker,
			Node:          w.node,
			Tier:          r.Tier,
			Rack:          w.rack,
			Capacity:      ms.Capacity,
			Remaining:     ms.Remaining,
			Connections:   ms.Connections,
			WriteThruMBps: ms.WriteMBps,
			ReadThruMBps:  ms.ReadMBps,
		})
	}
	return out
}

// enqueue appends a command for a worker to pick up on its next
// heartbeat.
func (m *Master) enqueue(w core.WorkerID, cmd rpc.Command) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending[w] = append(m.pending[w], cmd)
}

// monitor is the background loop that expires dead workers and repairs
// under- and over-replicated blocks (paper §5).
func (m *Master) monitor() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.MonitorInterval)
	defer ticker.Stop()
	histEvery := m.cfg.HistoryInterval
	if histEvery == 0 {
		histEvery = defaultHistoryInterval
	}
	var lastSample time.Time
	// The first mover pass waits a full interval: at boot there is no
	// heat history worth acting on yet.
	lastMove := time.Now()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			m.expireWorkers()
			m.recoverLeases()
			m.repairBlocks()
			if m.mover.enabled() && time.Since(lastMove) >= m.mover.interval {
				m.moverPass()
				lastMove = time.Now()
			}
			if histEvery > 0 && time.Since(lastSample) >= histEvery {
				m.sampleHistory()
				m.scanMisplaced()
				lastSample = time.Now()
			}
		}
	}
}

// recoverLeases abandons under-construction files whose writer went
// silent, invalidating any blocks they allocated (simplified HDFS
// lease recovery).
func (m *Master) recoverLeases() {
	cutoff := time.Now().Add(-m.cfg.LeaseTimeout).UnixNano()
	for _, path := range m.ns.StaleOpenFiles(cutoff) {
		blocks, err := m.ns.Abandon(path)
		if err != nil {
			continue // e.g. completed concurrently
		}
		m.cfg.Logger.Warn("lease expired; abandoned file", "path", path)
		m.journal.Publish(events.Warn, evLeaseExpired,
			"writer lease expired; file abandoned", "path", path)
		m.invalidateBlocks(blocks)
	}
}

func (m *Master) expireWorkers() {
	cutoff := time.Now().Add(-m.cfg.WorkerTimeout)
	var expired []*workerState
	m.mu.Lock()
	for id, w := range m.workers {
		if w.lastSeen.Before(cutoff) {
			expired = append(expired, w)
			delete(m.workers, id)
			delete(m.pending, id)
		}
	}
	// Drop a node's rack mapping only when its last worker left:
	// evicting a node that still hosts a live worker would corrupt
	// fault-domain scoring for every placement that follows.
	for _, w := range expired {
		if !m.nodeInUseLocked(w.node) {
			m.topo.Remove(w.node)
		}
	}
	m.mu.Unlock()
	for _, w := range expired {
		m.cfg.Logger.Warn("worker expired", "worker", w.id)
		m.journal.Publish(events.Warn, evWorkerExpired,
			"worker heartbeat expired", "worker", string(w.id), "node", w.node)
		m.blocks.RemoveWorker(w.id)
	}
}

// repairBlocks scans for unhealthy blocks and issues replication or
// deletion commands.
func (m *Master) repairBlocks() {
	snap := m.snapshot()
	if len(snap.Media) == 0 {
		return
	}
	now := time.Now()
	m.blocks.ScanUnhealthy(func(info blockmgmt.BlockInfo, st blockmgmt.ReplicationState) {
		// Blocks with an in-flight tier move belong to the mover: the
		// transient extra replica mid-move is not excess, and the
		// mover's retire step finishes the transition.
		if m.moverBusy(info.Block.ID) {
			return
		}
		m.mu.Lock()
		if until, busy := m.repairing[info.Block.ID]; busy && now.Before(until) {
			m.mu.Unlock()
			return
		}
		m.mu.Unlock()

		issued := 0
		if st.MissingTotal() > 0 && len(info.Replicas) > 0 {
			issued += m.replicateBlock(snap, info, st)
		}
		if st.Excess > 0 {
			issued += m.removeExcess(snap, info, st)
		}
		// Arm the backoff marker only when work was actually scheduled:
		// a block whose repair could not start (no source replica yet,
		// placement infeasible) must retry on the next tick, not wait
		// out a pointless backoff.
		if issued > 0 {
			m.mu.Lock()
			m.repairing[info.Block.ID] = now.Add(5 * m.cfg.MonitorInterval)
			m.mu.Unlock()
		}
	})
	// Drop stale repair markers.
	m.mu.Lock()
	for id, until := range m.repairing {
		if now.After(until) {
			delete(m.repairing, id)
		}
	}
	m.mu.Unlock()
}

// nodeInUseLocked reports whether any live worker still runs on node.
// Callers must hold m.mu.
func (m *Master) nodeInUseLocked(node string) bool {
	for _, w := range m.workers {
		if w.node == node {
			return true
		}
	}
	return false
}

// replicateBlock selects targets for the missing replicas via the
// placement policy (with the surviving replicas as context, paper §5)
// and instructs the chosen workers to copy the block from the most
// efficient source. It returns the number of commands issued.
func (m *Master) replicateBlock(snap *policy.Snapshot, info blockmgmt.BlockInfo, st blockmgmt.ReplicationState) int {
	missing := core.ReplicationVector(0)
	for tier, n := range st.MissingPerTier {
		missing = missing.WithTier(tier, n)
	}
	missing = missing.WithTier(core.TierUnspecified, st.MissingAny)

	existing := m.mediaFor(info.Replicas)
	if len(existing) == 0 {
		return 0 // nothing to copy from
	}
	var targets []policy.Media
	var err error
	m.withRand(func(rng *rand.Rand) {
		targets, err = m.cfg.Placement.PlaceReplicas(policy.PlacementRequest{
			Snapshot:  snap,
			RepVector: missing,
			BlockSize: info.Block.NumBytes,
			Existing:  existing,
			Rand:      rng,
		})
	})
	if err != nil && len(targets) == 0 {
		m.cfg.Logger.Warn("re-replication placement failed", "block", info.Block.ID, "err", err)
		return 0
	}

	// Order sources once with the retrieval policy; each target worker
	// copies from the best available replica.
	var sources []core.BlockLocation
	var ordered []policy.Media
	m.withRand(func(rng *rand.Rand) {
		ordered = m.cfg.Retrieval.Order(policy.RetrievalRequest{
			Snapshot: snap,
			Replicas: existing,
			Rand:     rng,
		})
	})
	for _, src := range ordered {
		if loc, ok := m.locationFor(blockmgmt.Replica{Worker: src.Worker, Storage: src.ID, Tier: src.Tier}); ok {
			sources = append(sources, loc)
		}
	}
	for _, tgt := range targets {
		m.enqueue(tgt.Worker, rpc.Command{
			Kind:    rpc.CmdReplicate,
			Block:   info.Block,
			Target:  tgt.ID,
			Sources: sources,
		})
		m.cfg.Logger.Info("scheduled re-replication",
			"block", info.Block.ID, "target", tgt.ID)
		m.journal.Publish(events.Warn, evBlockRereplicated,
			"under-replicated block scheduled for re-replication",
			"block", formatBlockID(info.Block.ID),
			"target", string(tgt.ID),
			"worker", string(tgt.Worker),
			"tier", tgt.Tier.String())
	}
	return len(targets)
}

// removeExcess picks the replicas whose removal leaves the
// best-scoring remaining set (paper §5) and instructs their workers to
// delete them. It returns the number of removals scheduled.
func (m *Master) removeExcess(snap *policy.Snapshot, info blockmgmt.BlockInfo, st blockmgmt.ReplicationState) int {
	removed := 0
	replicas := append([]blockmgmt.Replica(nil), info.Replicas...)
	for n := 0; n < st.Excess; n++ {
		media := m.mediaFor(replicas)
		if len(media) == 0 {
			return removed
		}
		// Restrict removal to the tiers with surplus replicas.
		idx := -1
		for _, tier := range st.ExcessTiers {
			if i, ok := policy.SelectExcessReplica(snap, info.Block.NumBytes, media, tier); ok {
				idx = i
				break
			}
		}
		if idx < 0 {
			var ok bool
			idx, ok = policy.SelectExcessReplica(snap, info.Block.NumBytes, media, core.TierUnspecified)
			if !ok {
				return removed
			}
		}
		victim := media[idx]
		// media and replicas may diverge in order; find the replica.
		for i, r := range replicas {
			if r.Storage == victim.ID {
				m.blocks.RemoveReplica(info.Block.ID, r.Storage)
				m.enqueue(r.Worker, rpc.Command{
					Kind: rpc.CmdDelete, Block: info.Block, Target: r.Storage,
				})
				m.cfg.Logger.Info("scheduled excess removal",
					"block", info.Block.ID, "storage", r.Storage)
				m.journal.Publish(events.Info, evBlockExcessRemoved,
					"over-replicated block scheduled for replica removal",
					"block", formatBlockID(info.Block.ID),
					"storage", string(r.Storage),
					"worker", string(r.Worker))
				replicas = append(replicas[:i], replicas[i+1:]...)
				removed++
				break
			}
		}
	}
	return removed
}

// tierReports aggregates per-tier statistics for the
// getStorageTierReports API (paper Table 1).
func (m *Master) tierReports() []core.StorageTierReport {
	m.mu.RLock()
	defer m.mu.RUnlock()
	type agg struct {
		report  core.StorageTierReport
		workers map[core.WorkerID]struct{}
		wSum    float64
		rSum    float64
	}
	aggs := make(map[core.StorageTier]*agg)
	for id, w := range m.workers {
		for _, ms := range w.media {
			a, ok := aggs[ms.Tier]
			if !ok {
				a = &agg{workers: make(map[core.WorkerID]struct{})}
				a.report.Tier = ms.Tier
				aggs[ms.Tier] = a
			}
			a.report.NumMedia++
			a.report.Capacity += ms.Capacity
			a.report.Remaining += ms.Remaining
			a.wSum += ms.WriteMBps
			a.rSum += ms.ReadMBps
			a.workers[id] = struct{}{}
		}
	}
	out := make([]core.StorageTierReport, 0, len(aggs))
	for _, a := range aggs {
		a.report.NumWorkers = len(a.workers)
		if a.report.NumMedia > 0 {
			a.report.WriteThruMBps = a.wSum / float64(a.report.NumMedia)
			a.report.ReadThruMBps = a.rSum / float64(a.report.NumMedia)
		}
		out = append(out, a.report)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tier < out[j].Tier })
	return out
}

// NumWorkers returns the number of live workers.
func (m *Master) NumWorkers() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.workers)
}
