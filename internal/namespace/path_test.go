package namespace

import "testing"

func TestCleanPath(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"/", "/", false},
		{"/a", "/a", false},
		{"/a/b/c", "/a/b/c", false},
		{"/a/", "/a", false},
		{"/a//b", "", true},
		{"relative", "", true},
		{"", "", true},
		{"/a/./b", "", true},
		{"/a/../b", "", true},
	}
	for _, tt := range tests {
		got, err := CleanPath(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("CleanPath(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("CleanPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	if got := SplitPath("/"); len(got) != 0 {
		t.Errorf("SplitPath(/) = %v, want empty", got)
	}
	if got := SplitPath("/a/b"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("SplitPath(/a/b) = %v", got)
	}
	if got := ParentPath("/a/b"); got != "/a" {
		t.Errorf("ParentPath(/a/b) = %q", got)
	}
	if got := ParentPath("/a"); got != "/" {
		t.Errorf("ParentPath(/a) = %q", got)
	}
	if got := ParentPath("/"); got != "/" {
		t.Errorf("ParentPath(/) = %q", got)
	}
	if got := BaseName("/a/b"); got != "b" {
		t.Errorf("BaseName(/a/b) = %q", got)
	}
	if got := BaseName("/"); got != "" {
		t.Errorf("BaseName(/) = %q", got)
	}
	if got := JoinPath("/", "x"); got != "/x" {
		t.Errorf("JoinPath(/, x) = %q", got)
	}
	if got := JoinPath("/a", "x"); got != "/a/x" {
		t.Errorf("JoinPath(/a, x) = %q", got)
	}
}

func TestIsAncestor(t *testing.T) {
	tests := []struct {
		dir, p string
		want   bool
	}{
		{"/", "/anything", true},
		{"/a", "/a", true},
		{"/a", "/a/b", true},
		{"/a", "/ab", false},
		{"/a/b", "/a", false},
	}
	for _, tt := range tests {
		if got := IsAncestor(tt.dir, tt.p); got != tt.want {
			t.Errorf("IsAncestor(%q, %q) = %v, want %v", tt.dir, tt.p, got, tt.want)
		}
	}
}
