package namespace

import "time"

// OpStats is the per-operation phase breakdown a caller can opt into
// by passing a *OpStats to any namespace method: how long the op
// waited for the namespace mutex, how long the in-memory apply took,
// and (for mutations on a persistent namespace) the edit-log append
// and fsync durations. The master feeds these into its audit log so
// every slow metadata op can be attributed to lock contention, tree
// work, or the disk.
type OpStats struct {
	LockWaitNs int64
	ApplyNs    int64
	AppendNs   int64
	FsyncNs    int64
}

// statsOf unpacks the optional variadic stats argument: namespace
// methods take `stats ...*OpStats` so existing callers stay
// source-compatible, and at most the first entry is used.
func statsOf(stats []*OpStats) *OpStats {
	if len(stats) > 0 {
		return stats[0]
	}
	return nil
}

// LockObserver receives every namespace mutex acquisition's wait
// time; read reports RLock vs Lock. Used by the master to feed its
// lock-contention histograms without the namespace importing metrics.
type LockObserver func(wait time.Duration, read bool)

// EditObserver receives every edit-log append's durations and the
// number of records in the batch (always 1 today; the hook exists so
// group commit can land without another plumbing change). fsync is
// zero when the log is not in sync mode.
type EditObserver func(append, fsync time.Duration, records int)

// SetLockObserver installs fn (nil clears) as the mutex-wait
// observer. Safe to call concurrently with operations.
func (ns *Namespace) SetLockObserver(fn LockObserver) {
	ns.lockObs.Store(&fn)
}

// SetEditObserver installs fn (nil clears) as the edit-log observer.
func (ns *Namespace) SetEditObserver(fn EditObserver) {
	ns.editObs.Store(&fn)
}

// lock acquires the write lock, recording the wait in st and the
// observer.
func (ns *Namespace) lock(st *OpStats) {
	t0 := time.Now()
	ns.mu.Lock()
	ns.observeLock(time.Since(t0), false, st)
}

// rlock acquires the read lock, recording the wait in st and the
// observer.
func (ns *Namespace) rlock(st *OpStats) {
	t0 := time.Now()
	ns.mu.RLock()
	ns.observeLock(time.Since(t0), true, st)
}

func (ns *Namespace) observeLock(wait time.Duration, read bool, st *OpStats) {
	if st != nil {
		st.LockWaitNs += wait.Nanoseconds()
	}
	if p := ns.lockObs.Load(); p != nil && *p != nil {
		(*p)(wait, read)
	}
}

// timeApply times a read op's body (the "apply" phase of an op that
// mutates nothing): `defer timeApply(st)()` after taking the lock.
func timeApply(st *OpStats) func() {
	if st == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { st.ApplyNs += time.Since(t0).Nanoseconds() }
}

// observeEdit reports one edit-log append to st and the observer.
func (ns *Namespace) observeEdit(appendD, fsyncD time.Duration, records int, st *OpStats) {
	if st != nil {
		st.AppendNs += appendD.Nanoseconds()
		st.FsyncNs += fsyncD.Nanoseconds()
	}
	if p := ns.editObs.Load(); p != nil && *p != nil {
		(*p)(appendD, fsyncD, records)
	}
}

// RecoveryStats describes what it cost to bring the namespace up:
// checkpoint size and load time, and how many edit records were
// replayed on top in how long. Zero for volatile namespaces.
type RecoveryStats struct {
	ImageBytes    int64 `json:"image_bytes"`
	ImageLoadNs   int64 `json:"image_load_ns"`
	EditsReplayed int   `json:"edits_replayed"`
	ReplayNs      int64 `json:"replay_ns"`
}

// Recovery returns the stats recorded by the last Open.
func (ns *Namespace) Recovery() RecoveryStats {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.recovery
}
