package namespace

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// EditOp identifies one namespace mutation in the edit log.
type EditOp byte

// Edit log operation codes.
const (
	EditMkdir EditOp = iota + 1
	EditCreate
	EditAddBlock
	EditCommitBlock
	EditComplete
	EditAbandon
	EditDelete
	EditRename
	EditSetRepVector
	EditSetQuota
	EditAbandonBlock
)

// EditRecord is one entry of the write-ahead edit log. A single sparse
// struct keeps the gob stream simple and append-only.
type EditRecord struct {
	TxID uint64
	Op   EditOp

	Path      string
	Dst       string // rename destination
	Owner     string
	RepVector core.ReplicationVector
	BlockSize int64
	Block     core.Block
	Parents   bool
	Overwrite bool
	Recursive bool
	Tier      core.StorageTier
	Bytes     int64
	Time      int64 // mutation time, Unix nanoseconds
}

// EditLog is an append-only, gob-encoded log of namespace mutations.
// Mutations are logged before being applied (write-ahead), so a
// restart replays exactly the committed operations.
type EditLog struct {
	f   *os.File
	enc *gob.Encoder
}

// OpenEditLog opens (creating or appending to) the edit log at path.
func OpenEditLog(path string) (*EditLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("namespace: opening edit log: %w", err)
	}
	return &EditLog{f: f, enc: gob.NewEncoder(f)}, nil
}

// Append writes one record to the log.
func (l *EditLog) Append(rec EditRecord) error {
	if err := l.enc.Encode(rec); err != nil {
		return fmt.Errorf("namespace: appending edit %d: %w", rec.Op, err)
	}
	return nil
}

// Sync flushes the log to stable storage.
func (l *EditLog) Sync() error { return l.f.Sync() }

// Close closes the log file.
func (l *EditLog) Close() error { return l.f.Close() }

// ReadEdits decodes every record in an edit log file, tolerating a
// truncated trailing record (the torn-write case after a crash).
func ReadEdits(path string) ([]EditRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("namespace: opening edit log: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var out []EditRecord
	for {
		var rec EditRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return out, nil // torn tail record: ignore
			}
			return out, fmt.Errorf("namespace: decoding edit log: %w", err)
		}
		out = append(out, rec)
	}
}
