package namespace

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// EditOp identifies one namespace mutation in the edit log.
type EditOp byte

// Edit log operation codes.
const (
	EditMkdir EditOp = iota + 1
	EditCreate
	EditAddBlock
	EditCommitBlock
	EditComplete
	EditAbandon
	EditDelete
	EditRename
	EditSetRepVector
	EditSetQuota
	EditAbandonBlock
)

// EditRecord is one entry of the write-ahead edit log. A single sparse
// struct keeps the gob stream simple and append-only.
type EditRecord struct {
	TxID uint64
	Op   EditOp

	Path      string
	Dst       string // rename destination
	Owner     string
	RepVector core.ReplicationVector
	BlockSize int64
	Block     core.Block
	Parents   bool
	Overwrite bool
	Recursive bool
	Tier      core.StorageTier
	Bytes     int64
	Time      int64 // mutation time, Unix nanoseconds
}

// EditLog is an append-only, gob-encoded log of namespace mutations.
// Mutations are logged before being applied (write-ahead), so a
// restart replays exactly the committed operations.
type EditLog struct {
	f   *os.File
	enc *gob.Encoder
}

// OpenEditLog opens (creating or appending to) the edit log at path.
func OpenEditLog(path string) (*EditLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("namespace: opening edit log: %w", err)
	}
	return &EditLog{f: f, enc: gob.NewEncoder(f)}, nil
}

// Append writes one record to the log.
func (l *EditLog) Append(rec EditRecord) error {
	if err := l.enc.Encode(rec); err != nil {
		return fmt.Errorf("namespace: appending edit %d: %w", rec.Op, err)
	}
	return nil
}

// Sync flushes the log to stable storage.
func (l *EditLog) Sync() error { return l.f.Sync() }

// Close closes the log file.
func (l *EditLog) Close() error { return l.f.Close() }

// ReadEdits decodes every record in an edit log file, tolerating a
// truncated trailing record (the torn-write case after a crash).
func ReadEdits(path string) ([]EditRecord, error) {
	recs, _, err := ReadEditsTruncating(path)
	return recs, err
}

// ReadEditsTruncating is ReadEdits plus the byte offset at which the
// last complete record ends. A crash can leave a torn partial record
// at the tail; recovery must truncate the file back to this offset
// before appending again, or the new records would land after the
// garbage bytes and be unreadable on the next replay.
//
// Gob streams are self-framing — every message is a byte count
// followed by that many payload bytes — so the offset of the last
// complete frame can be found without decoding.
func ReadEditsTruncating(path string) ([]EditRecord, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("namespace: opening edit log: %w", err)
	}
	good := 0
	for good < len(data) {
		n, w := gobUint(data[good:])
		if w <= 0 || uint64(good)+uint64(w)+n > uint64(len(data)) {
			break // torn tail frame
		}
		good += w + int(n)
	}
	dec := gob.NewDecoder(bytes.NewReader(data[:good]))
	var out []EditRecord
	for {
		var rec EditRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, int64(good), nil
			}
			return out, int64(good), fmt.Errorf("namespace: decoding edit log: %w", err)
		}
		out = append(out, rec)
	}
}

// gobUint decodes one gob-encoded unsigned integer (the message
// length prefix): a value below 128 is a single byte; otherwise the
// first byte is the negated count of the big-endian bytes that
// follow. Returns width 0 when the prefix itself is incomplete or
// malformed.
func gobUint(data []byte) (uint64, int) {
	if len(data) == 0 {
		return 0, 0
	}
	b := data[0]
	if b <= 0x7f {
		return uint64(b), 1
	}
	n := int(-int8(b))
	if n <= 0 || n > 8 || len(data) < 1+n {
		return 0, 0
	}
	var v uint64
	for _, c := range data[1 : 1+n] {
		v = v<<8 | uint64(c)
	}
	return v, 1 + n
}
