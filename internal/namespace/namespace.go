package namespace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// FileInfo describes one namespace entry to callers.
type FileInfo struct {
	Path      string
	IsDir     bool
	Length    int64
	RepVector core.ReplicationVector
	BlockSize int64
	ModTime   int64
	Owner     string
}

// Namespace is the master's directory tree with write-ahead logging
// and checkpointing. All methods are safe for concurrent use.
type Namespace struct {
	mu   sync.RWMutex
	root *INode
	log  *EditLog // nil when running without persistence
	dir  string   // persistence directory ("" = volatile)
	sync bool     // fsync the edit log after every append

	nextBlockID uint64
	nextGen     uint64
	txid        uint64

	recovery RecoveryStats

	lockObs atomic.Pointer[LockObserver]
	editObs atomic.Pointer[EditObserver]
}

const (
	imageFile = "fsimage"
	editsFile = "edits"
)

// Options configures how a namespace is opened.
type Options struct {
	// SyncEdits fsyncs the edit log after every append, trading
	// mutation latency for zero-edit-loss durability. Off by default
	// (the OS flushes on its own schedule, matching the seed
	// behaviour).
	SyncEdits bool
}

// Open loads (or initialises) a namespace persisted under dir: the
// latest fsimage checkpoint is loaded and the edit log replayed on
// top. An empty dir yields a volatile, in-memory namespace (useful
// for tests and simulations).
func Open(dir string) (*Namespace, error) {
	return OpenWithOptions(dir, Options{})
}

// OpenWithOptions is Open with explicit durability options, recording
// RecoveryStats (image size/load time, edits replayed/replay time)
// along the way.
func OpenWithOptions(dir string, opts Options) (*Namespace, error) {
	ns := &Namespace{
		root:        newDirectory("", "root", time.Now().UnixNano()),
		dir:         dir,
		sync:        opts.SyncEdits,
		nextBlockID: 1,
		nextGen:     1,
	}
	if dir == "" {
		return ns, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("namespace: creating metadata dir: %w", err)
	}
	imgStart := time.Now()
	if data, err := os.ReadFile(filepath.Join(dir, imageFile)); err == nil {
		if err := ns.loadImage(data); err != nil {
			return nil, err
		}
		ns.recovery.ImageBytes = int64(len(data))
		ns.recovery.ImageLoadNs = time.Since(imgStart).Nanoseconds()
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("namespace: reading fsimage: %w", err)
	}
	replayStart := time.Now()
	edits, err := ReadEdits(filepath.Join(dir, editsFile))
	if err != nil {
		return nil, err
	}
	for _, rec := range edits {
		if rec.TxID <= ns.txid {
			continue // already reflected in the checkpoint
		}
		if err := ns.apply(rec); err != nil {
			return nil, fmt.Errorf("namespace: replaying edit tx %d: %w", rec.TxID, err)
		}
		ns.txid = rec.TxID
		ns.recovery.EditsReplayed++
	}
	ns.recovery.ReplayNs = time.Since(replayStart).Nanoseconds()
	// Absorb the replayed edits into a fresh checkpoint before
	// accepting new mutations. This starts a new edit stream — a gob
	// decoder cannot resume a log written across two encoder sessions
	// — discards any torn tail bytes left by a crash, and bounds the
	// next restart's replay.
	if err := ns.checkpointLocked(); err != nil {
		return nil, err
	}
	return ns, nil
}

// Close releases the namespace's resources.
func (ns *Namespace) Close() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.log != nil {
		return ns.log.Close()
	}
	return nil
}

// logAndApply appends rec to the edit log (write-ahead), fsyncs when
// configured, and applies it to the in-memory tree, timing each phase
// into st and the edit observer. Callers hold ns.mu and have already
// validated the mutation, so apply cannot fail except on programming
// error.
func (ns *Namespace) logAndApply(rec EditRecord, st *OpStats) error {
	ns.txid++
	rec.TxID = ns.txid
	if rec.Time == 0 {
		rec.Time = time.Now().UnixNano()
	}
	if ns.log != nil {
		t0 := time.Now()
		if err := ns.log.Append(rec); err != nil {
			return err
		}
		appendD := time.Since(t0)
		var fsyncD time.Duration
		if ns.sync {
			t1 := time.Now()
			if err := ns.log.Sync(); err != nil {
				return fmt.Errorf("namespace: syncing edit log: %w", err)
			}
			fsyncD = time.Since(t1)
		}
		ns.observeEdit(appendD, fsyncD, 1, st)
	}
	t2 := time.Now()
	err := ns.apply(rec)
	if st != nil {
		st.ApplyNs += time.Since(t2).Nanoseconds()
	}
	return err
}

// resolve walks the tree to the inode at path. Callers hold ns.mu.
func (ns *Namespace) resolve(path string) (*INode, error) {
	node := ns.root
	for _, part := range SplitPath(path) {
		if !node.IsDir {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrNotDirectory)
		}
		child, ok := node.Children[part]
		if !ok {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrNotFound)
		}
		node = child
	}
	return node, nil
}

// ancestors returns the chain of directory inodes from the root down
// to (and including) the parent directory of path.
func (ns *Namespace) ancestors(path string) ([]*INode, error) {
	parts := SplitPath(path)
	chain := []*INode{ns.root}
	node := ns.root
	for _, part := range parts[:max(0, len(parts)-1)] {
		if !node.IsDir {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrNotDirectory)
		}
		child, ok := node.Children[part]
		if !ok {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrNotFound)
		}
		node = child
		chain = append(chain, node)
	}
	return chain, nil
}

// checkQuota verifies that adding delta to every directory in chain
// stays within each configured quota.
func checkQuota(chain []*INode, delta [numQuotaSlots]int64) error {
	for _, dir := range chain {
		for slot := 0; slot < numQuotaSlots; slot++ {
			if dir.Quota[slot] > 0 && delta[slot] > 0 &&
				dir.Usage[slot]+delta[slot] > dir.Quota[slot] {
				return fmt.Errorf("namespace: tier quota on %q slot %d (%d + %d > %d): %w",
					dir.Name, slot, dir.Usage[slot], delta[slot], dir.Quota[slot], core.ErrQuotaExceeded)
			}
		}
	}
	return nil
}

// chargeChain applies delta to every directory's usage counters.
func chargeChain(chain []*INode, delta [numQuotaSlots]int64) {
	for _, dir := range chain {
		dir.Usage = addCharges(dir.Usage, delta)
	}
}

// Mkdir creates a directory; with parents=true it creates missing
// ancestors like mkdir -p and is idempotent on existing directories.
func (ns *Namespace) Mkdir(path string, parents bool, owner string, stats ...*OpStats) error {
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	if path == Separator {
		if parents {
			return nil
		}
		return fmt.Errorf("namespace: %s: %w", path, core.ErrExists)
	}
	if node, err := ns.resolve(path); err == nil {
		if node.IsDir && parents {
			return nil
		}
		return fmt.Errorf("namespace: %s: %w", path, core.ErrExists)
	}
	if !parents {
		parent, err := ns.resolve(ParentPath(path))
		if err != nil {
			return err
		}
		if !parent.IsDir {
			return fmt.Errorf("namespace: %s: %w", ParentPath(path), core.ErrNotDirectory)
		}
	}
	return ns.logAndApply(EditRecord{Op: EditMkdir, Path: path, Parents: parents, Owner: owner}, st)
}

func (ns *Namespace) applyMkdir(rec EditRecord) error {
	node := ns.root
	parts := SplitPath(rec.Path)
	for i, part := range parts {
		if !node.IsDir {
			return fmt.Errorf("namespace: %s: %w", rec.Path, core.ErrNotDirectory)
		}
		child, ok := node.Children[part]
		if !ok {
			if !rec.Parents && i < len(parts)-1 {
				return fmt.Errorf("namespace: %s: %w", rec.Path, core.ErrNotFound)
			}
			child = newDirectory(part, rec.Owner, rec.Time)
			node.Children[part] = child
			node.ModTime = rec.Time
		}
		node = child
	}
	return nil
}

// Create registers a new under-construction file. With overwrite=true
// an existing file at the path is replaced; its blocks are returned so
// the caller can invalidate the replicas.
func (ns *Namespace) Create(path string, rv core.ReplicationVector, blockSize int64,
	overwrite bool, owner string, stats ...*OpStats) ([]core.Block, error) {

	path, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	if err := rv.Validate(); err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		blockSize = core.DefaultBlockSize
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	parentChain, err := ns.ancestors(path)
	if err != nil {
		return nil, err
	}
	parent := parentChain[len(parentChain)-1]
	if !parent.IsDir {
		return nil, fmt.Errorf("namespace: %s: %w", ParentPath(path), core.ErrNotDirectory)
	}
	var removed []core.Block
	if existing, ok := parent.Children[BaseName(path)]; ok {
		if existing.IsDir {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
		}
		if !overwrite {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrExists)
		}
		if existing.UnderConstruction {
			return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrFileOpen)
		}
		removed = append(removed, existing.Blocks...)
	}
	if err := ns.logAndApply(EditRecord{
		Op: EditCreate, Path: path, RepVector: rv, BlockSize: blockSize,
		Overwrite: overwrite, Owner: owner,
	}, st); err != nil {
		return nil, err
	}
	return removed, nil
}

func (ns *Namespace) applyCreate(rec EditRecord) error {
	chain, err := ns.ancestors(rec.Path)
	if err != nil {
		return err
	}
	parent := chain[len(chain)-1]
	name := BaseName(rec.Path)
	if parent.Children == nil {
		parent.Children = make(map[string]*INode)
	}
	if existing, ok := parent.Children[name]; ok && !existing.IsDir {
		chargeChain(chain, negCharges(fileCharges(existing)))
	}
	parent.Children[name] = newFile(name, rec.Owner, rec.RepVector, rec.BlockSize, rec.Time)
	parent.ModTime = rec.Time
	return nil
}

// AddBlock allocates the next block of an under-construction file,
// after checking that a full block would fit within every ancestor's
// tier quotas (the conservative HDFS-style check).
func (ns *Namespace) AddBlock(path string, stats ...*OpStats) (core.Block, error) {
	path, err := CleanPath(path)
	if err != nil {
		return core.Block{}, err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return core.Block{}, err
	}
	if node.IsDir {
		return core.Block{}, fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
	}
	if !node.UnderConstruction {
		return core.Block{}, fmt.Errorf("namespace: %s: %w", path, core.ErrFileClosed)
	}
	chain, err := ns.ancestors(path)
	if err != nil {
		return core.Block{}, err
	}
	if err := checkQuota(chain, charges(node.RepVector, node.BlockSize)); err != nil {
		return core.Block{}, err
	}
	blk := core.Block{
		ID:       core.BlockID(ns.nextBlockID),
		GenStamp: core.GenerationStamp(ns.nextGen),
	}
	if err := ns.logAndApply(EditRecord{Op: EditAddBlock, Path: path, Block: blk}, st); err != nil {
		return core.Block{}, err
	}
	return blk, nil
}

func (ns *Namespace) applyAddBlock(rec EditRecord) error {
	node, err := ns.resolve(rec.Path)
	if err != nil {
		return err
	}
	node.Blocks = append(node.Blocks, rec.Block)
	node.ModTime = rec.Time
	if id := uint64(rec.Block.ID); id >= ns.nextBlockID {
		ns.nextBlockID = id + 1
	}
	if g := uint64(rec.Block.GenStamp); g >= ns.nextGen {
		ns.nextGen = g + 1
	}
	return nil
}

// CommitBlock records the final length of a block that the client has
// finished writing, charging the actual bytes against the quotas.
func (ns *Namespace) CommitBlock(path string, b core.Block, stats ...*OpStats) error {
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if node.IsDir {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
	}
	found := false
	for _, existing := range node.Blocks {
		if existing.ID == b.ID {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("namespace: %s has no block %s: %w", path, b.ID, core.ErrNotFound)
	}
	return ns.logAndApply(EditRecord{Op: EditCommitBlock, Path: path, Block: b}, st)
}

func (ns *Namespace) applyCommitBlock(rec EditRecord) error {
	node, err := ns.resolve(rec.Path)
	if err != nil {
		return err
	}
	chain, err := ns.ancestors(rec.Path)
	if err != nil {
		return err
	}
	for i, existing := range node.Blocks {
		if existing.ID == rec.Block.ID {
			delta := rec.Block.NumBytes - existing.NumBytes
			node.Blocks[i] = rec.Block
			chargeChain(chain, charges(node.RepVector, delta))
			node.ModTime = rec.Time
			return nil
		}
	}
	return fmt.Errorf("namespace: %s has no block %s: %w", rec.Path, rec.Block.ID, core.ErrNotFound)
}

// AbandonBlock removes the last, still-uncommitted block of an
// under-construction file after a failed pipeline write, so the client
// can allocate a replacement (HDFS-style block recovery, simplified).
func (ns *Namespace) AbandonBlock(path string, id core.BlockID, stats ...*OpStats) error {
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if node.IsDir {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
	}
	if !node.UnderConstruction {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrFileClosed)
	}
	if len(node.Blocks) == 0 || node.Blocks[len(node.Blocks)-1].ID != id {
		return fmt.Errorf("namespace: %s: block %s is not the last block: %w", path, id, core.ErrNotFound)
	}
	return ns.logAndApply(EditRecord{Op: EditAbandonBlock, Path: path, Block: core.Block{ID: id}}, st)
}

func (ns *Namespace) applyAbandonBlock(rec EditRecord) error {
	node, err := ns.resolve(rec.Path)
	if err != nil {
		return err
	}
	chain, err := ns.ancestors(rec.Path)
	if err != nil {
		return err
	}
	last := len(node.Blocks) - 1
	if last < 0 || node.Blocks[last].ID != rec.Block.ID {
		return fmt.Errorf("namespace: %s: block %s is not the last block: %w", rec.Path, rec.Block.ID, core.ErrNotFound)
	}
	// Refund whatever bytes the block had already been charged.
	chargeChain(chain, negCharges(charges(node.RepVector, node.Blocks[last].NumBytes)))
	node.Blocks = node.Blocks[:last]
	node.ModTime = rec.Time
	return nil
}

// Complete commits the final block (if any) and seals the file.
func (ns *Namespace) Complete(path string, last *core.Block, stats ...*OpStats) error {
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if node.IsDir {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
	}
	if !node.UnderConstruction {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrFileClosed)
	}
	rec := EditRecord{Op: EditComplete, Path: path}
	if last != nil {
		rec.Block = *last
		rec.Bytes = 1 // marks the presence of a final block
	}
	return ns.logAndApply(rec, st)
}

func (ns *Namespace) applyComplete(rec EditRecord) error {
	if rec.Bytes == 1 {
		commit := rec
		commit.Op = EditCommitBlock
		if err := ns.applyCommitBlock(commit); err != nil {
			return err
		}
	}
	node, err := ns.resolve(rec.Path)
	if err != nil {
		return err
	}
	node.UnderConstruction = false
	node.ModTime = rec.Time
	return nil
}

// Abandon removes an under-construction file after a failed write,
// returning its blocks for invalidation.
func (ns *Namespace) Abandon(path string, stats ...*OpStats) ([]core.Block, error) {
	path, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return nil, err
	}
	if node.IsDir || !node.UnderConstruction {
		return nil, fmt.Errorf("namespace: %s is not under construction: %w", path, core.ErrFileClosed)
	}
	blocks := append([]core.Block(nil), node.Blocks...)
	if err := ns.logAndApply(EditRecord{Op: EditAbandon, Path: path}, st); err != nil {
		return nil, err
	}
	return blocks, nil
}

func (ns *Namespace) applyAbandon(rec EditRecord) error {
	return ns.removeNode(rec.Path, rec.Time)
}

// Delete removes a file or directory, returning every block of the
// removed subtree so the caller can invalidate the replicas. Deleting
// a non-empty directory requires recursive=true.
func (ns *Namespace) Delete(path string, recursive bool, stats ...*OpStats) ([]core.Block, error) {
	path, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	if path == Separator {
		return nil, fmt.Errorf("namespace: cannot delete the root: %w", core.ErrPermission)
	}
	node, err := ns.resolve(path)
	if err != nil {
		return nil, err
	}
	if node.IsDir && len(node.Children) > 0 && !recursive {
		return nil, fmt.Errorf("namespace: %s: %w", path, core.ErrNotEmpty)
	}
	blocks := collectBlocks(node, nil)
	if err := ns.logAndApply(EditRecord{Op: EditDelete, Path: path, Recursive: recursive}, st); err != nil {
		return nil, err
	}
	return blocks, nil
}

func (ns *Namespace) applyDelete(rec EditRecord) error {
	return ns.removeNode(rec.Path, rec.Time)
}

// removeNode unlinks the inode at path and updates ancestor usage.
func (ns *Namespace) removeNode(path string, now int64) error {
	chain, err := ns.ancestors(path)
	if err != nil {
		return err
	}
	parent := chain[len(chain)-1]
	name := BaseName(path)
	node, ok := parent.Children[name]
	if !ok {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrNotFound)
	}
	chargeChain(chain, negCharges(subtreeCharges(node)))
	delete(parent.Children, name)
	parent.ModTime = now
	return nil
}

// Rename moves a file or directory. The destination must not exist;
// moving a directory into its own subtree is rejected.
func (ns *Namespace) Rename(src, dst string, stats ...*OpStats) error {
	src, err := CleanPath(src)
	if err != nil {
		return err
	}
	dst, err = CleanPath(dst)
	if err != nil {
		return err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	if src == Separator {
		return fmt.Errorf("namespace: cannot rename the root: %w", core.ErrPermission)
	}
	if IsAncestor(src, dst) {
		return fmt.Errorf("namespace: cannot move %s into itself (%s): %w", src, dst, core.ErrExists)
	}
	node, err := ns.resolve(src)
	if err != nil {
		return err
	}
	if _, err := ns.resolve(dst); err == nil {
		return fmt.Errorf("namespace: %s: %w", dst, core.ErrExists)
	}
	dstChain, err := ns.ancestors(dst)
	if err != nil {
		return err
	}
	if !dstChain[len(dstChain)-1].IsDir {
		return fmt.Errorf("namespace: %s: %w", ParentPath(dst), core.ErrNotDirectory)
	}
	if err := checkQuota(dstChain, subtreeCharges(node)); err != nil {
		return err
	}
	return ns.logAndApply(EditRecord{Op: EditRename, Path: src, Dst: dst}, st)
}

func (ns *Namespace) applyRename(rec EditRecord) error {
	srcChain, err := ns.ancestors(rec.Path)
	if err != nil {
		return err
	}
	srcParent := srcChain[len(srcChain)-1]
	name := BaseName(rec.Path)
	node, ok := srcParent.Children[name]
	if !ok {
		return fmt.Errorf("namespace: %s: %w", rec.Path, core.ErrNotFound)
	}
	usage := subtreeCharges(node)
	chargeChain(srcChain, negCharges(usage))
	delete(srcParent.Children, name)
	srcParent.ModTime = rec.Time

	dstChain, err := ns.ancestors(rec.Dst)
	if err != nil {
		return err
	}
	dstParent := dstChain[len(dstChain)-1]
	node.Name = BaseName(rec.Dst)
	if dstParent.Children == nil {
		dstParent.Children = make(map[string]*INode)
	}
	dstParent.Children[node.Name] = node
	dstParent.ModTime = rec.Time
	chargeChain(dstChain, usage)
	return nil
}

// SetRepVector changes a file's replication vector (paper Table 1),
// returning the previous vector so the caller can compute the per-tier
// replica deltas to enact.
func (ns *Namespace) SetRepVector(path string, rv core.ReplicationVector, stats ...*OpStats) (core.ReplicationVector, error) {
	path, err := CleanPath(path)
	if err != nil {
		return 0, err
	}
	if err := rv.Validate(); err != nil {
		return 0, err
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return 0, err
	}
	if node.IsDir {
		return 0, fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
	}
	old := node.RepVector
	chain, err := ns.ancestors(path)
	if err != nil {
		return 0, err
	}
	delta := addCharges(charges(rv, node.Length()), negCharges(charges(old, node.Length())))
	if err := checkQuota(chain, delta); err != nil {
		return 0, err
	}
	if err := ns.logAndApply(EditRecord{Op: EditSetRepVector, Path: path, RepVector: rv}, st); err != nil {
		return 0, err
	}
	return old, nil
}

func (ns *Namespace) applySetRepVector(rec EditRecord) error {
	node, err := ns.resolve(rec.Path)
	if err != nil {
		return err
	}
	chain, err := ns.ancestors(rec.Path)
	if err != nil {
		return err
	}
	length := node.Length()
	delta := addCharges(charges(rec.RepVector, length), negCharges(charges(node.RepVector, length)))
	chargeChain(chain, delta)
	node.RepVector = rec.RepVector
	node.ModTime = rec.Time
	return nil
}

// SetQuota sets a per-tier byte quota on a directory; tier
// TierUnspecified sets the total-space quota and bytes<=0 clears it.
func (ns *Namespace) SetQuota(path string, tier core.StorageTier, bytes int64, stats ...*OpStats) error {
	path, err := CleanPath(path)
	if err != nil {
		return err
	}
	if tier > core.TierUnspecified {
		return fmt.Errorf("namespace: invalid quota tier %v: %w", tier, core.ErrNotFound)
	}
	st := statsOf(stats)
	ns.lock(st)
	defer ns.mu.Unlock()
	node, err := ns.resolve(path)
	if err != nil {
		return err
	}
	if !node.IsDir {
		return fmt.Errorf("namespace: %s: %w", path, core.ErrNotDirectory)
	}
	return ns.logAndApply(EditRecord{Op: EditSetQuota, Path: path, Tier: tier, Bytes: bytes}, st)
}

func (ns *Namespace) applySetQuota(rec EditRecord) error {
	node, err := ns.resolve(rec.Path)
	if err != nil {
		return err
	}
	slot := int(rec.Tier)
	if rec.Tier == core.TierUnspecified {
		slot = totalQuotaSlot
	}
	if rec.Bytes <= 0 {
		node.Quota[slot] = 0
	} else {
		node.Quota[slot] = rec.Bytes
	}
	node.ModTime = rec.Time
	return nil
}

// apply dispatches one edit record to its handler.
func (ns *Namespace) apply(rec EditRecord) error {
	switch rec.Op {
	case EditMkdir:
		return ns.applyMkdir(rec)
	case EditCreate:
		return ns.applyCreate(rec)
	case EditAddBlock:
		return ns.applyAddBlock(rec)
	case EditCommitBlock:
		return ns.applyCommitBlock(rec)
	case EditComplete:
		return ns.applyComplete(rec)
	case EditAbandon:
		return ns.applyAbandon(rec)
	case EditDelete:
		return ns.applyDelete(rec)
	case EditRename:
		return ns.applyRename(rec)
	case EditSetRepVector:
		return ns.applySetRepVector(rec)
	case EditSetQuota:
		return ns.applySetQuota(rec)
	case EditAbandonBlock:
		return ns.applyAbandonBlock(rec)
	}
	return fmt.Errorf("namespace: unknown edit op %d", rec.Op)
}

// Status returns the FileInfo of one path.
func (ns *Namespace) Status(path string, stats ...*OpStats) (FileInfo, error) {
	path, err := CleanPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	st := statsOf(stats)
	ns.rlock(st)
	defer ns.mu.RUnlock()
	defer timeApply(st)()
	node, err := ns.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	return infoFor(path, node), nil
}

func infoFor(path string, node *INode) FileInfo {
	info := FileInfo{
		Path:    path,
		IsDir:   node.IsDir,
		ModTime: node.ModTime,
		Owner:   node.Owner,
	}
	if !node.IsDir {
		info.Length = node.Length()
		info.RepVector = node.RepVector
		info.BlockSize = node.BlockSize
	}
	return info
}

// List returns the entries of a directory sorted by name, or the
// single entry for a file path.
func (ns *Namespace) List(path string, stats ...*OpStats) ([]FileInfo, error) {
	path, err := CleanPath(path)
	if err != nil {
		return nil, err
	}
	st := statsOf(stats)
	ns.rlock(st)
	defer ns.mu.RUnlock()
	defer timeApply(st)()
	node, err := ns.resolve(path)
	if err != nil {
		return nil, err
	}
	if !node.IsDir {
		return []FileInfo{infoFor(path, node)}, nil
	}
	out := make([]FileInfo, 0, len(node.Children))
	for _, name := range node.childNames() {
		out = append(out, infoFor(JoinPath(path, name), node.Children[name]))
	}
	return out, nil
}

// Exists reports whether a path resolves.
func (ns *Namespace) Exists(path string) bool {
	path, err := CleanPath(path)
	if err != nil {
		return false
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	_, err = ns.resolve(path)
	return err == nil
}

// FileBlocks returns a file's blocks in order plus its replication
// vector and block size.
func (ns *Namespace) FileBlocks(path string, stats ...*OpStats) ([]core.Block, core.ReplicationVector, int64, error) {
	path, err := CleanPath(path)
	if err != nil {
		return nil, 0, 0, err
	}
	st := statsOf(stats)
	ns.rlock(st)
	defer ns.mu.RUnlock()
	defer timeApply(st)()
	node, err := ns.resolve(path)
	if err != nil {
		return nil, 0, 0, err
	}
	if node.IsDir {
		return nil, 0, 0, fmt.Errorf("namespace: %s: %w", path, core.ErrIsDirectory)
	}
	return append([]core.Block(nil), node.Blocks...), node.RepVector, node.BlockSize, nil
}

// ForEachFile visits every file in the namespace in depth-first
// order. The callback must not call back into the namespace.
func (ns *Namespace) ForEachFile(fn func(path string, blocks []core.Block, rv core.ReplicationVector)) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	var walk func(path string, node *INode)
	walk = func(path string, node *INode) {
		if !node.IsDir {
			fn(path, node.Blocks, node.RepVector)
			return
		}
		for _, name := range node.childNames() {
			walk(JoinPath(path, name), node.Children[name])
		}
	}
	walk(Separator, ns.root)
}

// Stats returns the number of directories, files, and blocks.
func (ns *Namespace) Stats() (dirs, files, blocks int) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	var walk func(node *INode)
	walk = func(node *INode) {
		if node.IsDir {
			dirs++
			for _, c := range node.Children {
				walk(c)
			}
			return
		}
		files++
		blocks += len(node.Blocks)
	}
	walk(ns.root)
	return dirs, files, blocks
}

// image is the gob-serialised checkpoint payload.
type image struct {
	Root        *INode
	NextBlockID uint64
	NextGen     uint64
	TxID        uint64
}

// ImageBytes serialises the current namespace into a checkpoint
// payload, used both for local checkpoints and for Backup Master
// synchronisation (paper §2.1).
func (ns *Namespace) ImageBytes() ([]byte, error) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.imageBytesLocked()
}

func (ns *Namespace) imageBytesLocked() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(image{
		Root:        ns.root,
		NextBlockID: ns.nextBlockID,
		NextGen:     ns.nextGen,
		TxID:        ns.txid,
	})
	if err != nil {
		return nil, fmt.Errorf("namespace: encoding fsimage: %w", err)
	}
	return buf.Bytes(), nil
}

func (ns *Namespace) loadImage(data []byte) error {
	var img image
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("namespace: decoding fsimage: %w", err)
	}
	ns.root = img.Root
	ns.nextBlockID = img.NextBlockID
	ns.nextGen = img.NextGen
	ns.txid = img.TxID
	if ns.root == nil {
		ns.root = newDirectory("", "root", time.Now().UnixNano())
	}
	if ns.root.Children == nil {
		ns.root.Children = make(map[string]*INode)
	}
	return nil
}

// LoadImageBytes replaces the in-memory tree with a checkpoint
// payload; used by Backup Masters.
func (ns *Namespace) LoadImageBytes(data []byte) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.loadImage(data)
}

// Checkpoint atomically persists the current tree as the new fsimage
// and truncates the edit log (paper §2.1: periodic checkpoints). It is
// a no-op for volatile namespaces.
func (ns *Namespace) Checkpoint() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.checkpointLocked()
}

func (ns *Namespace) checkpointLocked() error {
	if ns.dir == "" {
		return nil
	}
	data, err := ns.imageBytesLocked()
	if err != nil {
		return err
	}
	tmp := filepath.Join(ns.dir, imageFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("namespace: writing fsimage: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(ns.dir, imageFile)); err != nil {
		return fmt.Errorf("namespace: committing fsimage: %w", err)
	}
	if ns.log != nil {
		ns.log.Close()
	}
	if err := os.Remove(filepath.Join(ns.dir, editsFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("namespace: truncating edit log: %w", err)
	}
	log, err := OpenEditLog(filepath.Join(ns.dir, editsFile))
	if err != nil {
		return err
	}
	ns.log = log
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StaleOpenFiles lists under-construction files whose last mutation is
// older than the cutoff — files whose writer likely died without
// completing or abandoning them. The master's lease recovery abandons
// them (HDFS's lease expiry, simplified).
func (ns *Namespace) StaleOpenFiles(cutoff int64) []string {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	var stale []string
	var walk func(path string, node *INode)
	walk = func(path string, node *INode) {
		if !node.IsDir {
			if node.UnderConstruction && node.ModTime < cutoff {
				stale = append(stale, path)
			}
			return
		}
		for _, name := range node.childNames() {
			walk(JoinPath(path, name), node.Children[name])
		}
	}
	walk(Separator, ns.root)
	return stale
}

// Summary aggregates a subtree: directory and file counts, logical
// bytes, and per-quota-slot byte usage (per-tier plus total).
type Summary struct {
	Files       int
	Directories int
	Bytes       int64
	TierBytes   [numQuotaSlots]int64
}

// ContentSummary walks the subtree at path and aggregates usage — the
// recursive accounting behind `du` and quota inspection.
func (ns *Namespace) ContentSummary(path string, stats ...*OpStats) (Summary, error) {
	path, err := CleanPath(path)
	if err != nil {
		return Summary{}, err
	}
	st := statsOf(stats)
	ns.rlock(st)
	defer ns.mu.RUnlock()
	defer timeApply(st)()
	node, err := ns.resolve(path)
	if err != nil {
		return Summary{}, err
	}
	var sum Summary
	var walk func(n *INode)
	walk = func(n *INode) {
		if !n.IsDir {
			sum.Files++
			length := n.Length()
			sum.Bytes += length
			ch := charges(n.RepVector, length)
			for i := range ch {
				sum.TierBytes[i] += ch[i]
			}
			return
		}
		sum.Directories++
		for _, name := range n.childNames() {
			walk(n.Children[name])
		}
	}
	walk(node)
	return sum, nil
}

// WalkFiles visits every file under root in depth-first order,
// exposing the under-construction flag; used by fsck.
func (ns *Namespace) WalkFiles(root string, fn func(path string, blocks []core.Block, rv core.ReplicationVector, underConstruction bool)) error {
	root, err := CleanPath(root)
	if err != nil {
		return err
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	node, err := ns.resolve(root)
	if err != nil {
		return err
	}
	var walk func(path string, n *INode)
	walk = func(path string, n *INode) {
		if !n.IsDir {
			fn(path, n.Blocks, n.RepVector, n.UnderConstruction)
			return
		}
		for _, name := range n.childNames() {
			walk(JoinPath(path, name), n.Children[name])
		}
	}
	walk(root, node)
	return nil
}
