package namespace

import (
	"sort"

	"repro/internal/core"
)

// numQuotaSlots is one slot per concrete tier plus one for the
// total-space quota.
const numQuotaSlots = core.NumTiers + 1

// totalQuotaSlot indexes the total-space quota/usage counter.
const totalQuotaSlot = core.NumTiers

// INode is one entry of the namespace tree. Exported fields make the
// whole tree gob-serialisable for fsimage checkpoints.
type INode struct {
	Name    string
	IsDir   bool
	ModTime int64 // Unix nanoseconds
	Owner   string

	// Directory state.
	Children map[string]*INode
	// Quota holds per-tier byte quotas plus the total-space quota in
	// the last slot; 0 means unlimited (paper §1: per-media quotas).
	Quota [numQuotaSlots]int64
	// Usage tracks the bytes charged against each quota slot by files
	// in this directory's subtree.
	Usage [numQuotaSlots]int64

	// File state.
	RepVector         core.ReplicationVector
	BlockSize         int64
	Blocks            []core.Block
	UnderConstruction bool
}

// newDirectory builds an empty directory inode.
func newDirectory(name, owner string, now int64) *INode {
	return &INode{
		Name:     name,
		IsDir:    true,
		ModTime:  now,
		Owner:    owner,
		Children: make(map[string]*INode),
	}
}

// newFile builds an empty under-construction file inode.
func newFile(name, owner string, rv core.ReplicationVector, blockSize int64, now int64) *INode {
	return &INode{
		Name:              name,
		ModTime:           now,
		Owner:             owner,
		RepVector:         rv,
		BlockSize:         blockSize,
		UnderConstruction: true,
	}
}

// Length returns the file's total byte length.
func (n *INode) Length() int64 {
	var total int64
	for _, b := range n.Blocks {
		total += b.NumBytes
	}
	return total
}

// childNames returns the sorted child names of a directory.
func (n *INode) childNames() []string {
	names := make([]string, 0, len(n.Children))
	for name := range n.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// charges computes the per-slot quota charges of adding bytes b to a
// file with replication vector rv: each pinned tier is charged
// rv[t]*b on its own slot, and every replica (pinned or unspecified)
// is charged on the total slot.
func charges(rv core.ReplicationVector, b int64) [numQuotaSlots]int64 {
	var ch [numQuotaSlots]int64
	for t := core.TierMemory; t < core.StorageTier(core.NumTiers); t++ {
		ch[t] = int64(rv.Tier(t)) * b
	}
	ch[totalQuotaSlot] = int64(rv.Total()) * b
	return ch
}

// addCharges accumulates b into a, returning the sum.
func addCharges(a, b [numQuotaSlots]int64) [numQuotaSlots]int64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// negCharges negates every slot.
func negCharges(a [numQuotaSlots]int64) [numQuotaSlots]int64 {
	for i := range a {
		a[i] = -a[i]
	}
	return a
}

// fileCharges computes the total quota charges of an existing file.
func fileCharges(n *INode) [numQuotaSlots]int64 {
	return charges(n.RepVector, n.Length())
}

// subtreeCharges sums the quota charges of every file under n.
func subtreeCharges(n *INode) [numQuotaSlots]int64 {
	if !n.IsDir {
		return fileCharges(n)
	}
	var total [numQuotaSlots]int64
	for _, c := range n.Children {
		total = addCharges(total, subtreeCharges(c))
	}
	return total
}

// collectBlocks appends every block under n to out, returning it.
func collectBlocks(n *INode, out []core.Block) []core.Block {
	if !n.IsDir {
		return append(out, n.Blocks...)
	}
	for _, name := range n.childNames() {
		out = collectBlocks(n.Children[name], out)
	}
	return out
}
