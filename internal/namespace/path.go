// Package namespace implements the OctopusFS directory namespace
// managed by each Primary Master (paper §2.1): a hierarchical inode
// tree with the usual open/close/delete/rename operations, per-tier
// storage quotas for multi-tenancy, a write-ahead edit log, and
// fsimage checkpoints from which Backup Masters restart the system.
package namespace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Separator is the path separator.
const Separator = "/"

// CleanPath validates and canonicalises an absolute namespace path:
// it must start with "/", contain no empty, "." or ".." components,
// and is returned without a trailing slash ("/" itself excepted).
func CleanPath(p string) (string, error) {
	if !strings.HasPrefix(p, Separator) {
		return "", fmt.Errorf("namespace: path %q is not absolute: %w", p, core.ErrNotFound)
	}
	if p == Separator {
		return p, nil
	}
	parts := strings.Split(strings.Trim(p, Separator), Separator)
	for _, part := range parts {
		if part == "" || part == "." || part == ".." {
			return "", fmt.Errorf("namespace: path %q has invalid component %q: %w", p, part, core.ErrNotFound)
		}
	}
	return Separator + strings.Join(parts, Separator), nil
}

// SplitPath splits a cleaned path into its components; the root path
// yields an empty slice.
func SplitPath(p string) []string {
	if p == Separator {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, Separator), Separator)
}

// ParentPath returns the parent of a cleaned path ("/" for top-level
// entries and for the root itself).
func ParentPath(p string) string {
	idx := strings.LastIndex(p, Separator)
	if idx <= 0 {
		return Separator
	}
	return p[:idx]
}

// BaseName returns the final component of a cleaned path ("" for the
// root).
func BaseName(p string) string {
	if p == Separator {
		return ""
	}
	return p[strings.LastIndex(p, Separator)+1:]
}

// JoinPath joins a cleaned directory path with a child name.
func JoinPath(dir, name string) string {
	if dir == Separator {
		return Separator + name
	}
	return dir + Separator + name
}

// IsAncestor reports whether dir is an ancestor of (or equal to) p.
func IsAncestor(dir, p string) bool {
	if dir == Separator {
		return true
	}
	return p == dir || strings.HasPrefix(p, dir+Separator)
}
