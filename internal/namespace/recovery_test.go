package namespace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// snapshotTree flattens a namespace into a deterministic, comparable
// form: every directory and file with its length, vector, block IDs,
// and under-construction flag.
func snapshotTree(t *testing.T, ns *Namespace) []string {
	t.Helper()
	var out []string
	var walk func(path string)
	walk = func(path string) {
		infos, err := ns.List(path)
		if err != nil {
			t.Fatalf("list %s: %v", path, err)
		}
		for _, info := range infos {
			if info.IsDir {
				out = append(out, fmt.Sprintf("dir %s", info.Path))
				walk(info.Path)
				continue
			}
			blocks, rv, bs, err := ns.FileBlocks(info.Path)
			if err != nil {
				t.Fatalf("blocks %s: %v", info.Path, err)
			}
			line := fmt.Sprintf("file %s len=%d rv=%v bs=%d blocks=", info.Path, info.Length, rv, bs)
			for _, b := range blocks {
				line += fmt.Sprintf("%d:%d:%d,", b.ID, b.GenStamp, b.NumBytes)
			}
			out = append(out, line)
		}
	}
	out = append(out, "dir /")
	walk(Separator)
	sort.Strings(out)
	return out
}

func equalSnapshots(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTornTailTruncatedAndTolerated(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if err := ns.Mkdir(fmt.Sprintf("/d%03d", i), false, "t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the tail so the last
	// record is torn.
	edits := filepath.Join(dir, editsFile)
	fi, err := os.Stat(edits)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(edits, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	ns2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	rec := ns2.Recovery()
	if rec.EditsReplayed >= total || rec.EditsReplayed < total-2 {
		t.Fatalf("edits replayed = %d, want in [%d, %d]", rec.EditsReplayed, total-2, total-1)
	}
	// The surviving directories must be an exact prefix.
	for i := 0; i < total; i++ {
		want := i < rec.EditsReplayed
		if got := ns2.Exists(fmt.Sprintf("/d%03d", i)); got != want {
			t.Fatalf("dir %d exists=%v, want %v (replayed %d)", i, got, want, rec.EditsReplayed)
		}
	}

	// The log must be appendable again and the next replay must see
	// both the surviving prefix and the new mutation — i.e. the torn
	// bytes were truncated away, not appended after.
	if err := ns2.Mkdir("/after", false, "t"); err != nil {
		t.Fatal(err)
	}
	if err := ns2.Close(); err != nil {
		t.Fatal(err)
	}
	ns3, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after post-crash append: %v", err)
	}
	defer ns3.Close()
	if !ns3.Exists("/after") {
		t.Fatal("post-crash mutation lost on second replay")
	}
	// The first reopen compacted the surviving prefix into the image,
	// so only the post-crash mutation replays.
	if got := ns3.Recovery().EditsReplayed; got != 1 {
		t.Fatalf("second replay = %d edits, want 1", got)
	}
	for i := 0; i < rec.EditsReplayed; i++ {
		if !ns3.Exists(fmt.Sprintf("/d%03d", i)) {
			t.Fatalf("dir %d lost after compaction", i)
		}
	}
}

func TestReplayDeterministicUnderConcurrentMutations(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := fmt.Sprintf("/g%d", g)
			if err := ns.Mkdir(base, true, "t"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 25; i++ {
				path := fmt.Sprintf("%s/f%d", base, i)
				if _, err := ns.Create(path, core.ReplicationVectorFromFactor(1), 1<<20, false, "t"); err != nil {
					t.Error(err)
					return
				}
				blk, err := ns.AddBlock(path)
				if err != nil {
					t.Error(err)
					return
				}
				blk.NumBytes = int64(100 + i)
				if err := ns.CommitBlock(path, blk); err != nil {
					t.Error(err)
					return
				}
				if err := ns.Complete(path, nil); err != nil {
					t.Error(err)
					return
				}
				switch i % 3 {
				case 0:
					if err := ns.Rename(path, path+".r"); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := ns.Delete(path, false); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	want := snapshotTree(t, ns)
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay must reproduce the exact tree, however the writers
	// interleaved — twice, to prove replay itself has no side effects
	// on the log.
	for round := 0; round < 2; round++ {
		ns2, err := Open(dir)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := snapshotTree(t, ns2)
		if !equalSnapshots(want, got) {
			t.Fatalf("round %d: replayed tree differs:\nwant %d entries\ngot  %d entries", round, len(want), len(got))
		}
		if err := ns2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoveryStatsRecorded(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := ns.Recovery(); got.ImageBytes != 0 || got.EditsReplayed != 0 {
		t.Fatalf("fresh namespace recovery = %+v, want no image / no edits", got)
	}
	for i := 0; i < 10; i++ {
		if err := ns.Mkdir(fmt.Sprintf("/pre%d", i), false, "t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := ns.Mkdir(fmt.Sprintf("/post%d", i), false, "t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}

	ns2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	rec := ns2.Recovery()
	if rec.ImageBytes <= 0 {
		t.Fatalf("image bytes = %d, want > 0", rec.ImageBytes)
	}
	if rec.ImageLoadNs <= 0 {
		t.Fatalf("image load ns = %d, want > 0", rec.ImageLoadNs)
	}
	if rec.EditsReplayed != 7 {
		t.Fatalf("edits replayed = %d, want 7 (checkpoint absorbed the first 10)", rec.EditsReplayed)
	}
	if rec.ReplayNs <= 0 {
		t.Fatalf("replay ns = %d, want > 0", rec.ReplayNs)
	}
}

func TestOpStatsAndObservers(t *testing.T) {
	dir := t.TempDir()
	ns, err := OpenWithOptions(dir, Options{SyncEdits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	var mu sync.Mutex
	var writeLocks, readLocks, appends, fsyncs, batchRecords int
	ns.SetLockObserver(func(wait time.Duration, read bool) {
		mu.Lock()
		defer mu.Unlock()
		if read {
			readLocks++
		} else {
			writeLocks++
		}
	})
	ns.SetEditObserver(func(appendD, fsyncD time.Duration, records int) {
		mu.Lock()
		defer mu.Unlock()
		appends++
		batchRecords += records
		if fsyncD > 0 {
			fsyncs++
		}
	})

	var st OpStats
	if err := ns.Mkdir("/obs", false, "t", &st); err != nil {
		t.Fatal(err)
	}
	if st.ApplyNs <= 0 {
		t.Fatalf("mkdir apply ns = %d, want > 0", st.ApplyNs)
	}
	if st.AppendNs <= 0 {
		t.Fatalf("mkdir append ns = %d, want > 0", st.AppendNs)
	}
	if st.FsyncNs <= 0 {
		t.Fatalf("mkdir fsync ns = %d, want > 0 (SyncEdits on)", st.FsyncNs)
	}

	var rd OpStats
	if _, err := ns.List("/", &rd); err != nil {
		t.Fatal(err)
	}
	if rd.ApplyNs <= 0 {
		t.Fatalf("list apply ns = %d, want > 0", rd.ApplyNs)
	}
	if rd.AppendNs != 0 || rd.FsyncNs != 0 {
		t.Fatalf("read op touched the edit log: %+v", rd)
	}

	mu.Lock()
	defer mu.Unlock()
	if writeLocks != 1 || readLocks == 0 {
		t.Fatalf("lock observer: write=%d read=%d", writeLocks, readLocks)
	}
	if appends != 1 || fsyncs != 1 || batchRecords != 1 {
		t.Fatalf("edit observer: appends=%d fsyncs=%d records=%d", appends, fsyncs, batchRecords)
	}
}
