package namespace

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func volatileNS(t *testing.T) *Namespace {
	t.Helper()
	ns, err := Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return ns
}

var rv3 = core.ReplicationVectorFromFactor(3)

// writeFile creates, allocates, and completes a file with the given
// block lengths.
func writeFile(t *testing.T, ns *Namespace, path string, rv core.ReplicationVector, blockSizes ...int64) []core.Block {
	t.Helper()
	if _, err := ns.Create(path, rv, 1024, false, "tester"); err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
	var blocks []core.Block
	for _, size := range blockSizes {
		b, err := ns.AddBlock(path)
		if err != nil {
			t.Fatalf("AddBlock(%s): %v", path, err)
		}
		b.NumBytes = size
		if err := ns.CommitBlock(path, b); err != nil {
			t.Fatalf("CommitBlock(%s): %v", path, err)
		}
		blocks = append(blocks, b)
	}
	if err := ns.Complete(path, nil); err != nil {
		t.Fatalf("Complete(%s): %v", path, err)
	}
	return blocks
}

func TestMkdirAndList(t *testing.T) {
	ns := volatileNS(t)
	if err := ns.Mkdir("/data/raw", true, "alice"); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if err := ns.Mkdir("/data/raw", false, "alice"); !errors.Is(err, core.ErrExists) {
		t.Errorf("re-Mkdir err = %v, want ErrExists", err)
	}
	if err := ns.Mkdir("/data/raw", true, "alice"); err != nil {
		t.Errorf("idempotent mkdir -p err = %v", err)
	}
	if err := ns.Mkdir("/missing/child", false, "alice"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("mkdir without parent err = %v, want ErrNotFound", err)
	}
	entries, err := ns.List("/data")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(entries) != 1 || entries[0].Path != "/data/raw" || !entries[0].IsDir {
		t.Errorf("List(/data) = %+v", entries)
	}
	if !ns.Exists("/data/raw") || ns.Exists("/nope") {
		t.Error("Exists misbehaves")
	}
}

func TestCreateWriteComplete(t *testing.T) {
	ns := volatileNS(t)
	blocks := writeFile(t, ns, "/f1", rv3, 100, 200, 50)
	if len(blocks) != 3 {
		t.Fatalf("wrote %d blocks", len(blocks))
	}
	// Block IDs must be unique and monotonic.
	if !(blocks[0].ID < blocks[1].ID && blocks[1].ID < blocks[2].ID) {
		t.Errorf("block IDs not monotonic: %v", blocks)
	}
	info, err := ns.Status("/f1")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if info.Length != 350 {
		t.Errorf("Length = %d, want 350", info.Length)
	}
	if info.RepVector != rv3 {
		t.Errorf("RepVector = %s, want %s", info.RepVector, rv3)
	}
	if info.IsDir {
		t.Error("file reported as directory")
	}

	got, rv, bs, err := ns.FileBlocks("/f1")
	if err != nil {
		t.Fatalf("FileBlocks: %v", err)
	}
	if len(got) != 3 || rv != rv3 || bs != 1024 {
		t.Errorf("FileBlocks = %v, %s, %d", got, rv, bs)
	}
}

func TestCreateValidation(t *testing.T) {
	ns := volatileNS(t)
	if _, err := ns.Create("/f", 0, 0, false, "u"); err == nil {
		t.Error("zero replication vector accepted")
	}
	writeFile(t, ns, "/f", rv3, 10)
	if _, err := ns.Create("/f", rv3, 0, false, "u"); !errors.Is(err, core.ErrExists) {
		t.Errorf("duplicate create err = %v, want ErrExists", err)
	}
	// Overwrite returns the old blocks for invalidation.
	removed, err := ns.Create("/f", rv3, 0, true, "u")
	if err != nil {
		t.Fatalf("overwrite create: %v", err)
	}
	if len(removed) != 1 {
		t.Errorf("overwrite returned %d blocks, want 1", len(removed))
	}
	if err := ns.Mkdir("/d", false, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Create("/d", rv3, 0, true, "u"); !errors.Is(err, core.ErrIsDirectory) {
		t.Errorf("create over directory err = %v, want ErrIsDirectory", err)
	}
	if _, err := ns.Create("/nodir/f", rv3, 0, false, "u"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("create without parent err = %v, want ErrNotFound", err)
	}
}

func TestUnderConstructionRules(t *testing.T) {
	ns := volatileNS(t)
	if _, err := ns.Create("/uc", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	// Cannot overwrite a file that is still being written.
	if _, err := ns.Create("/uc", rv3, 0, true, "u"); !errors.Is(err, core.ErrFileOpen) {
		t.Errorf("overwrite UC file err = %v, want ErrFileOpen", err)
	}
	if err := ns.Complete("/uc", nil); err != nil {
		t.Fatal(err)
	}
	// AddBlock on a sealed file fails.
	if _, err := ns.AddBlock("/uc"); !errors.Is(err, core.ErrFileClosed) {
		t.Errorf("AddBlock on sealed file err = %v, want ErrFileClosed", err)
	}
	if err := ns.Complete("/uc", nil); !errors.Is(err, core.ErrFileClosed) {
		t.Errorf("double Complete err = %v, want ErrFileClosed", err)
	}
}

func TestCompleteWithFinalBlock(t *testing.T) {
	ns := volatileNS(t)
	if _, err := ns.Create("/f", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	b, err := ns.AddBlock("/f")
	if err != nil {
		t.Fatal(err)
	}
	b.NumBytes = 777
	if err := ns.Complete("/f", &b); err != nil {
		t.Fatalf("Complete with final block: %v", err)
	}
	info, _ := ns.Status("/f")
	if info.Length != 777 {
		t.Errorf("Length = %d, want 777 (final block committed by Complete)", info.Length)
	}
}

func TestAbandon(t *testing.T) {
	ns := volatileNS(t)
	if _, err := ns.Create("/tmp1", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	b, _ := ns.AddBlock("/tmp1")
	blocks, err := ns.Abandon("/tmp1")
	if err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	if len(blocks) != 1 || blocks[0].ID != b.ID {
		t.Errorf("Abandon returned %v, want [%v]", blocks, b)
	}
	if ns.Exists("/tmp1") {
		t.Error("abandoned file still exists")
	}
	// Abandon of a sealed file is rejected.
	writeFile(t, ns, "/sealed", rv3, 1)
	if _, err := ns.Abandon("/sealed"); !errors.Is(err, core.ErrFileClosed) {
		t.Errorf("Abandon sealed err = %v, want ErrFileClosed", err)
	}
}

func TestDelete(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/d/sub", true, "u")
	b1 := writeFile(t, ns, "/d/f1", rv3, 10)
	b2 := writeFile(t, ns, "/d/sub/f2", rv3, 20, 30)

	if _, err := ns.Delete("/d", false); !errors.Is(err, core.ErrNotEmpty) {
		t.Errorf("non-recursive delete err = %v, want ErrNotEmpty", err)
	}
	blocks, err := ns.Delete("/d", true)
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if len(blocks) != len(b1)+len(b2) {
		t.Errorf("Delete returned %d blocks, want %d", len(blocks), len(b1)+len(b2))
	}
	if ns.Exists("/d") {
		t.Error("deleted directory still exists")
	}
	if _, err := ns.Delete("/", true); !errors.Is(err, core.ErrPermission) {
		t.Errorf("delete root err = %v, want ErrPermission", err)
	}
	if _, err := ns.Delete("/gone", false); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("delete missing err = %v, want ErrNotFound", err)
	}
}

func TestRename(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/a", true, "u")
	ns.Mkdir("/b", true, "u")
	writeFile(t, ns, "/a/f", rv3, 42)

	if err := ns.Rename("/a/f", "/b/g"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if ns.Exists("/a/f") || !ns.Exists("/b/g") {
		t.Error("rename did not move the file")
	}
	info, _ := ns.Status("/b/g")
	if info.Length != 42 {
		t.Errorf("renamed file length = %d", info.Length)
	}

	if err := ns.Rename("/b/g", "/b/g"); !errors.Is(err, core.ErrExists) {
		t.Errorf("rename onto itself err = %v, want ErrExists", err)
	}
	if err := ns.Rename("/b", "/b/inside"); !errors.Is(err, core.ErrExists) {
		t.Errorf("rename into own subtree err = %v, want ErrExists", err)
	}
	if err := ns.Rename("/", "/x"); !errors.Is(err, core.ErrPermission) {
		t.Errorf("rename root err = %v, want ErrPermission", err)
	}
	if err := ns.Rename("/missing", "/y"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("rename missing err = %v, want ErrNotFound", err)
	}
}

func TestSetRepVector(t *testing.T) {
	ns := volatileNS(t)
	writeFile(t, ns, "/f", core.NewReplicationVector(1, 0, 2, 0, 0), 100)
	old, err := ns.SetRepVector("/f", core.NewReplicationVector(1, 1, 1, 0, 0))
	if err != nil {
		t.Fatalf("SetRepVector: %v", err)
	}
	if old != core.NewReplicationVector(1, 0, 2, 0, 0) {
		t.Errorf("old vector = %s", old)
	}
	info, _ := ns.Status("/f")
	if info.RepVector != core.NewReplicationVector(1, 1, 1, 0, 0) {
		t.Errorf("new vector = %s", info.RepVector)
	}
	ns.Mkdir("/d", true, "u")
	if _, err := ns.SetRepVector("/d", rv3); !errors.Is(err, core.ErrIsDirectory) {
		t.Errorf("SetRepVector on dir err = %v, want ErrIsDirectory", err)
	}
}

func TestTierQuotas(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/q", true, "u")
	// Memory-tier quota: 2048 bytes. A file with 1 memory replica and
	// block size 1024 can allocate two blocks, not three.
	if err := ns.SetQuota("/q", core.TierMemory, 2048); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}
	rv := core.NewReplicationVector(1, 0, 2, 0, 0)
	if _, err := ns.Create("/q/f", rv, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b, err := ns.AddBlock("/q/f")
		if err != nil {
			t.Fatalf("AddBlock %d: %v", i, err)
		}
		b.NumBytes = 1024
		if err := ns.CommitBlock("/q/f", b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ns.AddBlock("/q/f"); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Errorf("third block err = %v, want ErrQuotaExceeded", err)
	}
	ns.Complete("/q/f", nil)

	// Raising the quota unblocks; clearing it removes the limit.
	if err := ns.SetQuota("/q", core.TierMemory, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Create("/q/f2", rv, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.AddBlock("/q/f2"); err != nil {
		t.Errorf("AddBlock after clearing quota: %v", err)
	}
}

func TestTotalSpaceQuota(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/q", true, "u")
	// Total quota 3*1024: one block with 3 replicas fits exactly.
	if err := ns.SetQuota("/q", core.TierUnspecified, 3*1024); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Create("/q/f", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	b, err := ns.AddBlock("/q/f")
	if err != nil {
		t.Fatalf("first block: %v", err)
	}
	b.NumBytes = 1024
	ns.CommitBlock("/q/f", b)
	if _, err := ns.AddBlock("/q/f"); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Errorf("second block err = %v, want ErrQuotaExceeded", err)
	}
}

func TestQuotaReleasedOnDelete(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/q", true, "u")
	ns.SetQuota("/q", core.TierUnspecified, 3*1024)
	writeFile(t, ns, "/q/f", rv3, 1024)
	if _, err := ns.Create("/q/f2", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.AddBlock("/q/f2"); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Fatalf("expected quota exhaustion, got %v", err)
	}
	if _, err := ns.Delete("/q/f", false); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.AddBlock("/q/f2"); err != nil {
		t.Errorf("AddBlock after delete freed quota: %v", err)
	}
}

func TestRenameRespectsDestinationQuota(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/big", true, "u")
	ns.Mkdir("/small", true, "u")
	ns.SetQuota("/small", core.TierUnspecified, 100)
	writeFile(t, ns, "/big/f", rv3, 1024)
	if err := ns.Rename("/big/f", "/small/f"); !errors.Is(err, core.ErrQuotaExceeded) {
		t.Errorf("rename into full dir err = %v, want ErrQuotaExceeded", err)
	}
	// And the file must still be in place after the failed rename.
	if !ns.Exists("/big/f") {
		t.Error("failed rename removed the source")
	}
}

func TestStats(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/a/b", true, "u")
	writeFile(t, ns, "/a/f1", rv3, 1)
	writeFile(t, ns, "/a/b/f2", rv3, 1, 2)
	dirs, files, blocks := ns.Stats()
	if dirs != 3 || files != 2 || blocks != 3 { // root, /a, /a/b
		t.Errorf("Stats = %d dirs, %d files, %d blocks; want 3/2/3", dirs, files, blocks)
	}
}

func TestForEachFile(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/x", true, "u")
	writeFile(t, ns, "/x/a", rv3, 1)
	writeFile(t, ns, "/x/b", rv3, 2)
	var paths []string
	ns.ForEachFile(func(p string, blocks []core.Block, rv core.ReplicationVector) {
		paths = append(paths, p)
		if rv != rv3 {
			t.Errorf("rv for %s = %s", p, rv)
		}
	})
	if len(paths) != 2 || paths[0] != "/x/a" || paths[1] != "/x/b" {
		t.Errorf("ForEachFile visited %v", paths)
	}
}
