package namespace

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestEditLogReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ns.Mkdir("/data", true, "u")
	writeFile(t, ns, "/data/f", rv3, 100, 200)
	ns.Mkdir("/tmp", true, "u")
	ns.Rename("/data/f", "/tmp/g")
	ns.SetQuota("/tmp", core.TierMemory, 1<<20)
	ns.Close()

	// Reopen: the edit log alone must rebuild the exact tree.
	ns2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ns2.Close()
	if ns2.Exists("/data/f") || !ns2.Exists("/tmp/g") {
		t.Error("replay lost the rename")
	}
	info, err := ns2.Status("/tmp/g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Length != 300 {
		t.Errorf("replayed length = %d, want 300", info.Length)
	}
	// Block ID allocation must continue after the replayed maximum.
	blocks, _, _, _ := ns2.FileBlocks("/tmp/g")
	if _, err := ns2.Create("/new", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	nb, err := ns2.AddBlock("/new")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if nb.ID <= b.ID {
			t.Errorf("new block ID %v collides with replayed %v", nb.ID, b.ID)
		}
	}
}

func TestCheckpointTruncatesEditsAndRestores(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ns.Mkdir("/a/b/c", true, "u")
	writeFile(t, ns, "/a/b/c/f", rv3, 77)
	if err := ns.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint mutation lands in the fresh edit log.
	ns.Mkdir("/post", true, "u")
	ns.Close()

	if fi, err := os.Stat(filepath.Join(dir, "fsimage")); err != nil || fi.Size() == 0 {
		t.Fatalf("fsimage missing after checkpoint: %v", err)
	}

	ns2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer ns2.Close()
	if !ns2.Exists("/a/b/c/f") {
		t.Error("checkpointed file lost")
	}
	if !ns2.Exists("/post") {
		t.Error("post-checkpoint edit lost")
	}
	info, _ := ns2.Status("/a/b/c/f")
	if info.Length != 77 {
		t.Errorf("restored length = %d, want 77", info.Length)
	}
}

func TestTornEditLogTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ns.Mkdir("/ok", true, "u")
	ns.Close()

	// Simulate a crash mid-append by truncating the tail.
	editsPath := filepath.Join(dir, "edits")
	data, err := os.ReadFile(editsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(editsPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	ns2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer ns2.Close()
}

func TestImageBytesRoundTrip(t *testing.T) {
	ns := volatileNS(t)
	ns.Mkdir("/backup/me", true, "u")
	writeFile(t, ns, "/backup/me/f", rv3, 10)
	data, err := ns.ImageBytes()
	if err != nil {
		t.Fatalf("ImageBytes: %v", err)
	}

	standby := volatileNS(t)
	if err := standby.LoadImageBytes(data); err != nil {
		t.Fatalf("LoadImageBytes: %v", err)
	}
	if !standby.Exists("/backup/me/f") {
		t.Error("backup image missing file")
	}
	d1, f1, b1 := ns.Stats()
	d2, f2, b2 := standby.Stats()
	if d1 != d2 || f1 != f2 || b1 != b2 {
		t.Errorf("stats diverge: (%d,%d,%d) vs (%d,%d,%d)", d1, f1, b1, d2, f2, b2)
	}
}

func TestQuotaSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ns, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ns.Mkdir("/q", true, "u")
	ns.SetQuota("/q", core.TierUnspecified, 3*1024)
	writeFile(t, ns, "/q/f", rv3, 1024)
	ns.Close()

	ns2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ns2.Close()
	// The replayed usage must still block a second file's block.
	if _, err := ns2.Create("/q/f2", rv3, 1024, false, "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns2.AddBlock("/q/f2"); err == nil {
		t.Error("quota enforcement lost across restart")
	}
}
