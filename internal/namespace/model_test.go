package namespace

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// modelFS is a trivial reference model of the namespace: a flat map
// from path to kind. The real namespace must agree with it after any
// sequence of operations.
type modelFS struct {
	dirs  map[string]bool
	files map[string]int64 // path -> length
}

func newModel() *modelFS {
	return &modelFS{dirs: map[string]bool{"/": true}, files: map[string]int64{}}
}

func (m *modelFS) mkdirAll(p string) {
	parts := SplitPath(p)
	cur := ""
	for _, part := range parts {
		cur = cur + "/" + part
		m.dirs[cur] = true
	}
}

func (m *modelFS) create(p string, length int64) bool {
	if m.dirs[p] || m.files[p] != 0 {
		return false
	}
	if _, exists := m.files[p]; exists {
		return false
	}
	if !m.dirs[ParentPath(p)] {
		return false
	}
	m.files[p] = length
	return true
}

func (m *modelFS) deleteTree(p string) {
	delete(m.files, p)
	delete(m.dirs, p)
	for f := range m.files {
		if IsAncestor(p, f) {
			delete(m.files, f)
		}
	}
	for d := range m.dirs {
		if IsAncestor(p, d) {
			delete(m.dirs, d)
		}
	}
}

func (m *modelFS) rename(src, dst string) bool {
	if src == "/" || IsAncestor(src, dst) {
		return false
	}
	if m.dirs[dst] || hasFile(m, dst) {
		return false
	}
	if !m.dirs[ParentPath(dst)] {
		return false
	}
	if l, ok := m.files[src]; ok {
		delete(m.files, src)
		m.files[dst] = l
		return true
	}
	if m.dirs[src] {
		// Move the whole subtree.
		moved := map[string]int64{}
		for f, l := range m.files {
			if IsAncestor(src, f) {
				moved[dst+strings.TrimPrefix(f, src)] = l
				delete(m.files, f)
			}
		}
		for f, l := range moved {
			m.files[f] = l
		}
		movedDirs := []string{}
		for d := range m.dirs {
			if IsAncestor(src, d) {
				movedDirs = append(movedDirs, d)
			}
		}
		for _, d := range movedDirs {
			delete(m.dirs, d)
			m.dirs[dst+strings.TrimPrefix(d, src)] = true
		}
		return true
	}
	return false
}

func hasFile(m *modelFS, p string) bool {
	_, ok := m.files[p]
	return ok
}

// TestNamespaceAgainstModel applies a long random operation sequence
// to both the real namespace and the flat reference model, then
// verifies they contain exactly the same tree.
func TestNamespaceAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	ns := volatileNS(t)
	model := newModel()

	names := []string{"a", "b", "c", "d"}
	randPath := func(depth int) string {
		var sb strings.Builder
		for i := 0; i < depth; i++ {
			sb.WriteString("/")
			sb.WriteString(names[rng.Intn(len(names))])
		}
		if sb.Len() == 0 {
			return "/"
		}
		return sb.String()
	}

	for op := 0; op < 2000; op++ {
		switch rng.Intn(5) {
		case 0: // mkdir -p
			p := randPath(1 + rng.Intn(3))
			if p == "/" {
				continue
			}
			err := ns.Mkdir(p, true, "u")
			// mkdir -p fails only if a file is in the way.
			blocked := false
			probe := p
			for probe != "/" {
				if hasFile(model, probe) {
					blocked = true
					break
				}
				probe = ParentPath(probe)
			}
			if blocked {
				if err == nil {
					t.Fatalf("op %d: mkdir %s succeeded over a file", op, p)
				}
			} else if err != nil {
				t.Fatalf("op %d: mkdir %s: %v", op, p, err)
			} else {
				model.mkdirAll(p)
			}
		case 1: // create + complete a small file
			p := randPath(1 + rng.Intn(3))
			if p == "/" {
				continue
			}
			length := int64(rng.Intn(1000) + 1)
			want := model.create(p, length)
			_, err := ns.Create(p, rv3, 1024, false, "u")
			if want != (err == nil) {
				t.Fatalf("op %d: create %s: model=%v real err=%v", op, p, want, err)
			}
			if err == nil {
				b, err := ns.AddBlock(p)
				if err != nil {
					t.Fatalf("op %d: addblock %s: %v", op, p, err)
				}
				b.NumBytes = length
				if err := ns.Complete(p, &b); err != nil {
					t.Fatalf("op %d: complete %s: %v", op, p, err)
				}
			}
		case 2: // recursive delete
			p := randPath(1 + rng.Intn(3))
			if p == "/" {
				continue
			}
			exists := model.dirs[p] || hasFile(model, p)
			_, err := ns.Delete(p, true)
			if exists != (err == nil) {
				t.Fatalf("op %d: delete %s: model exists=%v real err=%v", op, p, exists, err)
			}
			if err == nil {
				model.deleteTree(p)
			}
		case 3: // rename
			src := randPath(1 + rng.Intn(3))
			dst := randPath(1 + rng.Intn(3))
			if src == "/" || dst == "/" {
				continue
			}
			srcExists := model.dirs[src] || hasFile(model, src)
			want := srcExists && model.rename2Check(dst, src)
			err := ns.Rename(src, dst)
			if want != (err == nil) {
				t.Fatalf("op %d: rename %s -> %s: model=%v real err=%v", op, src, dst, err == nil, err)
			}
			if err == nil {
				model.rename(src, dst)
			}
		case 4: // status check on a random path
			p := randPath(1 + rng.Intn(3))
			info, err := ns.Status(p)
			switch {
			case hasFile(model, p):
				if err != nil || info.IsDir {
					t.Fatalf("op %d: status %s: want file, got %+v %v", op, p, info, err)
				}
				if info.Length != model.files[p] {
					t.Fatalf("op %d: status %s length %d, model %d", op, p, info.Length, model.files[p])
				}
			case model.dirs[p] || p == "/":
				if err != nil || !info.IsDir {
					t.Fatalf("op %d: status %s: want dir, got %+v %v", op, p, info, err)
				}
			default:
				if err == nil {
					t.Fatalf("op %d: status %s: want error, got %+v", op, p, info)
				}
			}
		}
	}

	// Final full-tree comparison.
	var realFiles []string
	ns.ForEachFile(func(p string, _ []core.Block, _ core.ReplicationVector) {
		realFiles = append(realFiles, p)
	})
	var modelFiles []string
	for f := range model.files {
		modelFiles = append(modelFiles, f)
	}
	sort.Strings(realFiles)
	sort.Strings(modelFiles)
	if len(realFiles) != len(modelFiles) {
		t.Fatalf("final trees diverge: real %d files %v vs model %d files %v",
			len(realFiles), realFiles, len(modelFiles), modelFiles)
	}
	for i := range realFiles {
		if realFiles[i] != modelFiles[i] {
			t.Fatalf("final trees diverge at %d: %s vs %s", i, realFiles[i], modelFiles[i])
		}
	}
}

// rename2Check mirrors the real namespace's rename preconditions on
// the destination side.
func (m *modelFS) rename2Check(dst, src string) bool {
	if IsAncestor(src, dst) {
		return false
	}
	if m.dirs[dst] || hasFile(m, dst) {
		return false
	}
	return m.dirs[ParentPath(dst)]
}
